package bus

import (
	"context"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/simnet"
	"repro/internal/vtime"
)

func testBus() *Bus {
	return New(vtime.NewClock(time.Microsecond), nil)
}

func TestPublishDelivers(t *testing.T) {
	b := testBus()
	defer b.Close()
	got := make(chan any, 1)
	b.Subscribe("diag", "n1", "med", func(n Notification) { got <- n.Payload })
	b.Publish("med0", "n0", "med", 42)
	select {
	case v := <-got:
		if v != 42 {
			t.Fatalf("payload = %v", v)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("notification never delivered")
	}
}

func TestPerSubscriptionOrdering(t *testing.T) {
	b := testBus()
	defer b.Close()
	const n = 500
	recv := make([]int, 0, n)
	done := make(chan struct{})
	b.Subscribe("s", "n1", "t", func(nt Notification) {
		recv = append(recv, nt.Payload.(int))
		if len(recv) == n {
			close(done)
		}
	})
	for i := 0; i < n; i++ {
		b.Publish("p", "n0", "t", i)
	}
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatalf("only %d/%d delivered", len(recv), n)
	}
	for i, v := range recv {
		if v != i {
			t.Fatalf("out of order at %d: got %d", i, v)
		}
	}
}

func TestMultipleSubscribersEachGetACopy(t *testing.T) {
	b := testBus()
	defer b.Close()
	var count atomic.Int64
	var wg sync.WaitGroup
	wg.Add(3)
	for i := 0; i < 3; i++ {
		b.Subscribe("s", "n1", "t", func(Notification) {
			count.Add(1)
			wg.Done()
		})
	}
	b.Publish("p", "n0", "t", "x")
	waitDone(t, &wg)
	if count.Load() != 3 {
		t.Fatalf("delivered %d, want 3", count.Load())
	}
}

func TestTopicsAreIsolated(t *testing.T) {
	b := testBus()
	defer b.Close()
	var wrong atomic.Int64
	b.Subscribe("s", "n1", "other", func(Notification) { wrong.Add(1) })
	hit := make(chan struct{}, 1)
	b.Subscribe("s2", "n1", "t", func(Notification) { hit <- struct{}{} })
	b.Publish("p", "n0", "t", nil)
	<-hit
	time.Sleep(10 * time.Millisecond)
	if wrong.Load() != 0 {
		t.Fatal("notification leaked across topics")
	}
}

func TestCancelStopsDelivery(t *testing.T) {
	b := testBus()
	defer b.Close()
	var count atomic.Int64
	s := b.Subscribe("s", "n1", "t", func(Notification) { count.Add(1) })
	b.Publish("p", "n0", "t", 1)
	s.Cancel()
	s.Drain()
	after := count.Load()
	b.Publish("p", "n0", "t", 2)
	time.Sleep(10 * time.Millisecond)
	if count.Load() != after {
		t.Fatal("delivery after Cancel")
	}
	if after > 1 {
		t.Fatalf("delivered %d before cancel, want ≤1", after)
	}
}

func TestCloseRejectsPublishAndSubscribe(t *testing.T) {
	b := testBus()
	var count atomic.Int64
	b.Subscribe("s", "n1", "t", func(Notification) { count.Add(1) })
	b.Close()
	b.Publish("p", "n0", "t", 1)
	s2 := b.Subscribe("late", "n1", "t", func(Notification) { count.Add(1) })
	s2.Drain() // returns immediately: subscription was stillborn
	b.Publish("p", "n0", "t", 2)
	time.Sleep(10 * time.Millisecond)
	if count.Load() != 0 {
		t.Fatalf("delivered %d after Close", count.Load())
	}
	b.Close() // idempotent
}

func TestStats(t *testing.T) {
	b := testBus()
	defer b.Close()
	var wg sync.WaitGroup
	wg.Add(2)
	b.Subscribe("s", "n1", "m1", func(Notification) { wg.Done() })
	b.Publish("p", "n0", "m1", 1)
	b.Publish("p", "n0", "m1", 2)
	b.Publish("p", "n0", "m2", 3) // no subscriber: published but undelivered
	waitDone(t, &wg)
	st := b.StatsSnapshot()
	if st.Published["m1"] != 2 || st.Published["m2"] != 1 {
		t.Fatalf("published = %v", st.Published)
	}
	if st.Delivered != 2 {
		t.Fatalf("delivered = %d, want 2", st.Delivered)
	}
}

func TestCrossNodeDeliveryChargesLink(t *testing.T) {
	clock := vtime.NewClock(50 * time.Microsecond)
	net := simnet.NewNetwork(clock)
	net.AddNode("a")
	net.AddNode("b")
	net.SetLink("a", "b", &simnet.Link{LatencyMs: 20}) // 1ms real
	b := New(clock, net)
	defer b.Close()

	local := make(chan time.Time, 1)
	remote := make(chan time.Time, 1)
	b.Subscribe("local", "a", "t", func(Notification) { local <- time.Now() })
	b.Subscribe("remote", "b", "t", func(Notification) { remote <- time.Now() })
	start := time.Now()
	b.Publish("p", "a", "t", nil)
	lt, rt := <-local, <-remote
	if lt.Sub(start) > 500*time.Microsecond {
		t.Errorf("local delivery took %v, should be ~free", lt.Sub(start))
	}
	if rt.Sub(start) < 700*time.Microsecond {
		t.Errorf("remote delivery took %v, want ≥ ~1ms link cost", rt.Sub(start))
	}
}

func TestConcurrentPublishers(t *testing.T) {
	// Block policy: every publish must land, so the count is exact even
	// when publishers outpace the delivery goroutine.
	b := NewWithOptions(vtime.NewClock(time.Microsecond), nil, Options{Overflow: OverflowBlock})
	defer b.Close()
	const pubs, each = 8, 200
	var count atomic.Int64
	var wg sync.WaitGroup
	wg.Add(pubs * each)
	b.Subscribe("s", "n1", "t", func(Notification) {
		count.Add(1)
		wg.Done()
	})
	for p := 0; p < pubs; p++ {
		go func() {
			for i := 0; i < each; i++ {
				b.Publish("p", "n0", "t", i)
			}
		}()
	}
	waitDone(t, &wg)
	if count.Load() != pubs*each {
		t.Fatalf("delivered %d, want %d", count.Load(), pubs*each)
	}
}

func TestDropOldestBoundsQueueAndCounts(t *testing.T) {
	b := NewWithOptions(vtime.NewClock(time.Microsecond), nil, Options{QueueCap: 4, Overflow: OverflowDropOldest})
	defer b.Close()
	gate := make(chan struct{})
	var recv []int
	done := make(chan struct{})
	s := b.Subscribe("slow", "n1", "t", func(n Notification) {
		<-gate
		recv = append(recv, n.Payload.(int))
	})
	// The delivery goroutine dequeues the first notification and parks in
	// the handler; publish until the 4-slot queue has been overrun.
	const total = 10
	for i := 0; i < total; i++ {
		b.Publish("p", "n0", "t", i)
	}
	// Drops are counted synchronously in Publish: at most cap 4 queued plus
	// one possibly in-flight survive, so at least total-5 were dropped.
	st := b.StatsSnapshot()
	if st.Dropped["t"] < total-5 {
		t.Fatalf("dropped = %d, want ≥ %d", st.Dropped["t"], total-5)
	}
	close(gate)
	go func() { s.Cancel(); s.Drain(); close(done) }()
	<-done
	if len(recv) < 4 || int64(len(recv))+st.Dropped["t"] != total {
		t.Fatalf("delivered %d, dropped %d: survivors + drops must equal %d published, with ≥ cap survivors",
			len(recv), st.Dropped["t"], total)
	}
	// Drop-oldest keeps the freshest tail: the last queued survivors must
	// be the most recently published values, in order.
	for i := 1; i < len(recv); i++ {
		if recv[i] <= recv[i-1] {
			t.Fatalf("out of order after drops: %v", recv)
		}
	}
	if recv[len(recv)-1] != total-1 {
		t.Fatalf("newest notification lost: got tail %d, want %d", recv[len(recv)-1], total-1)
	}
}

func TestBlockExertsBackpressure(t *testing.T) {
	b := NewWithOptions(vtime.NewClock(time.Microsecond), nil, Options{QueueCap: 2, Overflow: OverflowBlock})
	defer b.Close()
	gate := make(chan struct{})
	var count atomic.Int64
	b.Subscribe("slow", "n1", "t", func(Notification) {
		<-gate
		count.Add(1)
	})
	published := make(chan struct{})
	go func() {
		// 1 in-flight + 2 queued fit; the 4th publish must block.
		for i := 0; i < 4; i++ {
			b.Publish("p", "n0", "t", i)
		}
		close(published)
	}()
	select {
	case <-published:
		t.Fatal("publisher finished against a full queue: no backpressure")
	case <-time.After(50 * time.Millisecond):
	}
	close(gate) // subscriber drains, freeing space
	select {
	case <-published:
	case <-time.After(5 * time.Second):
		t.Fatal("publisher never unblocked")
	}
	waitFor(t, func() bool { return count.Load() == 4 }, "all 4 delivered")
	if d := b.StatsSnapshot().Dropped["t"]; d != 0 {
		t.Fatalf("block policy dropped %d notifications", d)
	}
}

func TestBlockedPublisherReleasedOnClose(t *testing.T) {
	b := NewWithOptions(vtime.NewClock(time.Microsecond), nil, Options{QueueCap: 1, Overflow: OverflowBlock})
	gate := make(chan struct{})
	defer close(gate)
	b.Subscribe("slow", "n1", "t", func(Notification) { <-gate })
	unblocked := make(chan struct{})
	go func() {
		for i := 0; i < 4; i++ {
			b.Publish("p", "n0", "t", i)
		}
		close(unblocked)
	}()
	time.Sleep(20 * time.Millisecond) // let the publisher hit the full queue
	b.Close()
	select {
	case <-unblocked:
	case <-time.After(5 * time.Second):
		t.Fatal("publisher still blocked after Close")
	}
}

func TestGrowPolicyNeverDrops(t *testing.T) {
	b := NewWithOptions(vtime.NewClock(time.Microsecond), nil, Options{QueueCap: 2, Overflow: OverflowGrow})
	defer b.Close()
	gate := make(chan struct{})
	var count atomic.Int64
	b.Subscribe("slow", "n1", "t", func(Notification) {
		<-gate
		count.Add(1)
	})
	const total = 64 // far past QueueCap: the queue must grow instead
	for i := 0; i < total; i++ {
		b.Publish("p", "n0", "t", i)
	}
	close(gate)
	waitFor(t, func() bool { return count.Load() == total }, "all delivered")
	if d := b.StatsSnapshot().Dropped["t"]; d != 0 {
		t.Fatalf("grow policy dropped %d notifications", d)
	}
}

func TestSubscribeContextCancelStopsDelivery(t *testing.T) {
	b := testBus()
	defer b.Close()
	ctx, cancel := context.WithCancel(context.Background())
	var count atomic.Int64
	s := b.SubscribeContext(ctx, "s", "n1", "t", func(Notification) { count.Add(1) })
	hit := make(chan struct{}, 1)
	b.Subscribe("probe", "n1", "t", func(Notification) { hit <- struct{}{} })
	b.Publish("p", "n0", "t", 1)
	<-hit
	cancel()
	s.Drain() // the watcher cancels the subscription; Drain must return
	after := count.Load()
	b.Publish("p", "n0", "t", 2)
	<-hit
	time.Sleep(10 * time.Millisecond)
	if count.Load() != after {
		t.Fatal("delivery continued after context cancellation")
	}
}

func waitFor(t *testing.T, cond func() bool, what string) {
	t.Helper()
	deadline := time.After(5 * time.Second)
	for !cond() {
		select {
		case <-deadline:
			t.Fatalf("timed out waiting for %s", what)
		case <-time.After(time.Millisecond):
		}
	}
}

func waitDone(t *testing.T, wg *sync.WaitGroup) {
	t.Helper()
	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("timed out waiting for deliveries")
	}
}

// TestStatsSnapshotConcurrent is the race-audit test for the monitoring
// path: publishers, snapshot readers, and subscribe/cancel churn all run at
// once. Run under -race (make race / the CI race job), it proves the
// per-topic counter maps and the aggregate counters are safely shared.
func TestStatsSnapshotConcurrent(t *testing.T) {
	b := NewWithOptions(vtime.NewClock(time.Microsecond), nil, Options{QueueCap: 8})
	defer b.Close()

	var publishers sync.WaitGroup
	for i := 0; i < 4; i++ {
		publishers.Add(1)
		go func(i int) {
			defer publishers.Done()
			topic := Topic([]string{"t0", "t1"}[i%2])
			for j := 0; j < 500; j++ {
				b.Publish("pub", "n", topic, j)
			}
		}(i)
	}

	stop := make(chan struct{})
	var readers sync.WaitGroup
	readers.Add(1)
	go func() {
		defer readers.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			st := b.StatsSnapshot()
			// Mutating the returned copy must not affect the bus.
			st.Published["t0"] = -1
			st.Dropped["t0"] = -1
		}
	}()
	readers.Add(1)
	go func() {
		defer readers.Done()
		for i := 0; i < 50; i++ {
			sub := b.Subscribe("churn", "n", "t0", func(Notification) {})
			sub.Cancel()
		}
	}()

	waitDone(t, &publishers)
	close(stop)
	readers.Wait()

	st := b.StatsSnapshot()
	if st.Published["t0"]+st.Published["t1"] != 2000 {
		t.Fatalf("published = %v, want 2000 total", st.Published)
	}
	if st.Published["t0"] < 0 || st.Dropped["t0"] < 0 {
		t.Fatal("snapshot mutation leaked into the bus")
	}
}
