// Package bus implements the asynchronous publish/subscribe notification
// substrate that the adaptivity components of the AQP architecture use to
// communicate (paper §2): self-monitoring operators publish raw events, each
// MonitoringEventDetector subscribes to its local engine's topic and
// publishes filtered notifications, the Diagnoser subscribes to detectors
// and publishes proposed redistributions, and the Responder subscribes to
// the Diagnoser.
//
// Delivery is asynchronous: every subscription owns a goroutine and an
// unbounded FIFO queue, so publishers never block on slow subscribers and
// per-subscription ordering is preserved. When the bus is built over a
// simulated network, deliveries between different nodes are charged the
// modelled link cost, so notification traffic competes for the same fabric
// as data buffers — which is what keeps the paper honest about "no flooding
// of messages".
package bus

import (
	"sync"

	"repro/internal/simnet"
	"repro/internal/vtime"
)

// Topic names a notification channel, e.g. "raw.ws0" or "diagnosis".
type Topic string

// Notification is one published message.
type Notification struct {
	Topic Topic
	// From identifies the publishing component; FromNode the machine it
	// runs on (used to charge cross-node delivery cost).
	From     string
	FromNode simnet.NodeID
	// AtMs is the publication time in paper milliseconds.
	AtMs    float64
	Payload any
}

// Handler consumes notifications. Handlers run on the subscription's
// delivery goroutine; a slow handler delays only its own subscription.
type Handler func(Notification)

// notificationWireSize approximates the on-the-wire size of a notification
// in bytes; the paper ships them as SOAP messages, so small payloads still
// cost a frame.
const notificationWireSize = 512

// Bus routes notifications from publishers to subscribers.
type Bus struct {
	clock *vtime.Clock
	net   *simnet.Network // may be nil: delivery is then free

	mu     sync.Mutex
	subs   map[Topic][]*Subscription
	closed bool

	stats Stats
}

// Stats counts bus traffic; the Overheads experiment reports these to show
// the system is not flooded by messages.
type Stats struct {
	Published map[Topic]int64
	Delivered int64
}

// New builds a bus over the given clock. net may be nil, in which case
// deliveries are instantaneous (used by unit tests).
func New(clock *vtime.Clock, net *simnet.Network) *Bus {
	return &Bus{
		clock: clock,
		net:   net,
		subs:  make(map[Topic][]*Subscription),
		stats: Stats{Published: make(map[Topic]int64)},
	}
}

// Subscription is one subscriber's registration on one topic.
type Subscription struct {
	bus   *Bus
	topic Topic
	name  string
	node  simnet.NodeID
	h     Handler

	mu     sync.Mutex
	cond   *sync.Cond
	queue  []Notification
	closed bool
	done   chan struct{}
}

// Subscribe registers handler h, running on behalf of the named component on
// the given node, for all notifications published to topic. The returned
// Subscription must be Cancelled (or the Bus Closed) to release its
// goroutine.
func (b *Bus) Subscribe(name string, node simnet.NodeID, topic Topic, h Handler) *Subscription {
	s := &Subscription{bus: b, topic: topic, name: name, node: node, h: h, done: make(chan struct{})}
	s.cond = sync.NewCond(&s.mu)
	b.mu.Lock()
	if b.closed {
		b.mu.Unlock()
		close(s.done)
		s.closed = true
		return s
	}
	b.subs[topic] = append(b.subs[topic], s)
	b.mu.Unlock()
	go s.deliverLoop()
	return s
}

// Publish sends payload to every subscription on topic. It never blocks on
// subscribers.
func (b *Bus) Publish(from string, fromNode simnet.NodeID, topic Topic, payload any) {
	n := Notification{
		Topic:    topic,
		From:     from,
		FromNode: fromNode,
		AtMs:     b.clock.NowMs(),
		Payload:  payload,
	}
	b.mu.Lock()
	if b.closed {
		b.mu.Unlock()
		return
	}
	b.stats.Published[topic]++
	targets := make([]*Subscription, len(b.subs[topic]))
	copy(targets, b.subs[topic])
	b.mu.Unlock()
	for _, s := range targets {
		s.enqueue(n)
	}
}

// StatsSnapshot returns a copy of the traffic counters.
func (b *Bus) StatsSnapshot() Stats {
	b.mu.Lock()
	defer b.mu.Unlock()
	out := Stats{Published: make(map[Topic]int64, len(b.stats.Published)), Delivered: b.stats.Delivered}
	for t, c := range b.stats.Published {
		out.Published[t] = c
	}
	return out
}

// Close cancels every subscription and rejects further publishes. It does
// not wait for in-flight deliveries; use Subscription.Drain where a test
// needs that.
func (b *Bus) Close() {
	b.mu.Lock()
	if b.closed {
		b.mu.Unlock()
		return
	}
	b.closed = true
	var all []*Subscription
	for _, subs := range b.subs {
		all = append(all, subs...)
	}
	b.subs = make(map[Topic][]*Subscription)
	b.mu.Unlock()
	for _, s := range all {
		s.stop()
	}
}

func (b *Bus) countDelivered() {
	b.mu.Lock()
	b.stats.Delivered++
	b.mu.Unlock()
}

func (s *Subscription) enqueue(n Notification) {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return
	}
	s.queue = append(s.queue, n)
	s.cond.Signal()
	s.mu.Unlock()
}

func (s *Subscription) deliverLoop() {
	defer close(s.done)
	for {
		s.mu.Lock()
		for len(s.queue) == 0 && !s.closed {
			s.cond.Wait()
		}
		if s.closed && len(s.queue) == 0 {
			s.mu.Unlock()
			return
		}
		n := s.queue[0]
		s.queue = s.queue[1:]
		s.mu.Unlock()

		// Charge the cross-node delivery cost on the receiving side, so a
		// remote notification arrives later than a local one.
		if s.bus.net != nil && n.FromNode != "" && s.node != "" && n.FromNode != s.node {
			s.bus.net.Link(n.FromNode, s.node).Transmit(s.bus.clock, notificationWireSize)
		}
		s.h(n)
		s.bus.countDelivered()
	}
}

// Cancel removes the subscription; queued notifications are still delivered
// before the goroutine exits.
func (s *Subscription) Cancel() {
	s.bus.mu.Lock()
	subs := s.bus.subs[s.topic]
	for i, other := range subs {
		if other == s {
			s.bus.subs[s.topic] = append(subs[:i:i], subs[i+1:]...)
			break
		}
	}
	s.bus.mu.Unlock()
	s.stop()
}

// Drain blocks until the subscription's goroutine has delivered everything
// and exited. Call Cancel (or Bus.Close) first.
func (s *Subscription) Drain() { <-s.done }

func (s *Subscription) stop() {
	s.mu.Lock()
	if !s.closed {
		s.closed = true
		s.cond.Signal()
	}
	s.mu.Unlock()
}
