// Package bus implements the asynchronous publish/subscribe notification
// substrate that the adaptivity components of the AQP architecture use to
// communicate (paper §2): self-monitoring operators publish raw events, each
// MonitoringEventDetector subscribes to its local engine's topic and
// publishes filtered notifications, the Diagnoser subscribes to detectors
// and publishes proposed redistributions, and the Responder subscribes to
// the Diagnoser.
//
// Delivery is asynchronous: every subscription owns a goroutine and a
// bounded ring queue, so publishers never block on slow subscribers in the
// default configuration and per-subscription ordering is preserved. When a
// queue fills, the configured Overflow policy decides whether the oldest
// notification is dropped (counted in Stats.Dropped — monitoring traffic is
// advisory, and a fresher reading supersedes a stale one) or the publisher
// blocks until the subscriber catches up. When the bus is built over a
// simulated network, deliveries between different nodes are charged the
// modelled link cost, so notification traffic competes for the same fabric
// as data buffers — which is what keeps the paper honest about "no flooding
// of messages".
package bus

import (
	"context"
	"sync"

	"repro/internal/obs"
	"repro/internal/simnet"
	"repro/internal/vtime"
)

// Topic names a notification channel, e.g. "raw.ws0" or "diagnosis".
type Topic string

// Notification is one published message.
type Notification struct {
	Topic Topic
	// From identifies the publishing component; FromNode the machine it
	// runs on (used to charge cross-node delivery cost).
	From     string
	FromNode simnet.NodeID
	// AtMs is the publication time in paper milliseconds.
	AtMs    float64
	Payload any
}

// Handler consumes notifications. Handlers run on the subscription's
// delivery goroutine; a slow handler delays only its own subscription.
type Handler func(Notification)

// notificationWireSize approximates the on-the-wire size of a notification
// in bytes; the paper ships them as SOAP messages, so small payloads still
// cost a frame.
const notificationWireSize = 512

// Overflow selects what a full subscription queue does with a new
// notification.
type Overflow uint8

const (
	// OverflowDropOldest evicts the oldest queued notification to make
	// room, counting the drop in Stats.Dropped. This is the default:
	// monitoring events are periodic readings, so under pressure the
	// freshest data wins and memory stays bounded.
	OverflowDropOldest Overflow = iota
	// OverflowBlock makes the publisher wait for queue space, trading
	// publisher progress for lossless delivery.
	OverflowBlock
	// OverflowGrow restores the pre-bounded behavior: the queue grows
	// without limit. Kept for comparison benchmarks and as an escape
	// hatch; not recommended for long-lived services.
	OverflowGrow
)

// DefaultQueueCap is the per-subscription queue bound used when Options
// leaves QueueCap unset. Sized well above the AQP components' steady-state
// backlog (a MED aggregates its raw feed every period; Diagnoser and
// Responder see a few notifications per adaptation), so drops only occur
// under genuine overload.
const DefaultQueueCap = 1024

// Options configures a Bus.
type Options struct {
	// QueueCap bounds each subscription's queue; <= 0 selects
	// DefaultQueueCap. Ignored under OverflowGrow.
	QueueCap int
	// Overflow is the full-queue policy for every subscription.
	Overflow Overflow
}

// Bus routes notifications from publishers to subscribers.
type Bus struct {
	clock *vtime.Clock
	net   *simnet.Network // may be nil: delivery is then free
	opts  Options

	mu     sync.Mutex
	subs   map[Topic][]*Subscription
	closed bool

	// statsMu guards the per-topic counter maps separately from the
	// subscription table, so hot publishers and StatsSnapshot readers never
	// contend with Subscribe/Cancel. The process-wide aggregates live in the
	// obs registry; the maps keep the per-topic breakdown the Overheads
	// experiment reports.
	statsMu sync.Mutex
	stats   Stats

	// Registry-backed aggregate counters and the queue-depth distribution
	// (nil when instrumentation is disabled; all methods are nil-safe).
	obsPublished *obs.Counter
	obsDelivered *obs.Counter
	obsDropped   *obs.Counter
	obsDepth     *obs.Histogram
}

// Stats counts bus traffic; the Overheads experiment reports these to show
// the system is not flooded by messages. StatsSnapshot returns a deep copy;
// the process-wide aggregates are also mirrored into the obs registry as
// bus_published_total / bus_delivered_total / bus_dropped_total.
type Stats struct {
	Published map[Topic]int64
	Delivered int64
	// Dropped counts notifications evicted by OverflowDropOldest, per
	// topic. A non-zero count means some subscriber could not keep up with
	// its feed.
	Dropped map[Topic]int64
}

// New builds a bus with default options over the given clock. net may be
// nil, in which case deliveries are instantaneous (used by unit tests).
func New(clock *vtime.Clock, net *simnet.Network) *Bus {
	return NewWithOptions(clock, net, Options{})
}

// NewWithOptions builds a bus with an explicit queue bound and overflow
// policy.
func NewWithOptions(clock *vtime.Clock, net *simnet.Network, opts Options) *Bus {
	if opts.QueueCap <= 0 {
		opts.QueueCap = DefaultQueueCap
	}
	o := obs.Default()
	return &Bus{
		clock:        clock,
		net:          net,
		opts:         opts,
		subs:         make(map[Topic][]*Subscription),
		stats:        Stats{Published: make(map[Topic]int64), Dropped: make(map[Topic]int64)},
		obsPublished: o.Counter(obs.MBusPublished),
		obsDelivered: o.Counter(obs.MBusDelivered),
		obsDropped:   o.Counter(obs.MBusDropped),
		obsDepth:     o.Histogram(obs.MBusQueueDepth, obs.DefBucketsSize),
	}
}

// Subscription is one subscriber's registration on one topic. Its queue is
// a ring that grows geometrically up to the bus's bound, so an idle
// subscription costs a few words, not a full-capacity buffer.
type Subscription struct {
	bus   *Bus
	topic Topic
	name  string
	node  simnet.NodeID
	h     Handler

	mu     sync.Mutex
	cond   *sync.Cond
	ring   []Notification
	head   int
	count  int
	closed bool
	done   chan struct{}
}

// Subscribe registers handler h, running on behalf of the named component on
// the given node, for all notifications published to topic. The returned
// Subscription must be Cancelled (or the Bus Closed) to release its
// goroutine.
func (b *Bus) Subscribe(name string, node simnet.NodeID, topic Topic, h Handler) *Subscription {
	s := &Subscription{bus: b, topic: topic, name: name, node: node, h: h, done: make(chan struct{})}
	s.cond = sync.NewCond(&s.mu)
	b.mu.Lock()
	if b.closed {
		b.mu.Unlock()
		close(s.done)
		s.closed = true
		return s
	}
	b.subs[topic] = append(b.subs[topic], s)
	b.mu.Unlock()
	go s.deliverLoop()
	return s
}

// SubscribeContext is Subscribe tied to a context: when ctx is done the
// subscription cancels itself and its delivery goroutine exits after
// draining. A nil ctx behaves like plain Subscribe. This is how a
// QuerySession scopes its AQP components' subscriptions to the query's
// lifetime.
func (b *Bus) SubscribeContext(ctx context.Context, name string, node simnet.NodeID, topic Topic, h Handler) *Subscription {
	s := b.Subscribe(name, node, topic, h)
	if ctx != nil && ctx.Done() != nil {
		go func() {
			select {
			case <-ctx.Done():
				s.Cancel()
			case <-s.done:
			}
		}()
	}
	return s
}

// Publish sends payload to every subscription on topic. Under the default
// drop-oldest policy it never blocks on subscribers; under OverflowBlock it
// waits for space in each full queue.
func (b *Bus) Publish(from string, fromNode simnet.NodeID, topic Topic, payload any) {
	n := Notification{
		Topic:    topic,
		From:     from,
		FromNode: fromNode,
		AtMs:     b.clock.NowMs(),
		Payload:  payload,
	}
	b.mu.Lock()
	if b.closed {
		b.mu.Unlock()
		return
	}
	targets := make([]*Subscription, len(b.subs[topic]))
	copy(targets, b.subs[topic])
	b.mu.Unlock()
	b.statsMu.Lock()
	b.stats.Published[topic]++
	b.statsMu.Unlock()
	b.obsPublished.Inc()
	for _, s := range targets {
		s.enqueue(n)
	}
}

// StatsSnapshot returns a deep copy of the traffic counters: the maps are
// cloned under the stats lock, so the caller can read them freely while
// publishers keep running.
func (b *Bus) StatsSnapshot() Stats {
	b.statsMu.Lock()
	defer b.statsMu.Unlock()
	out := Stats{
		Published: make(map[Topic]int64, len(b.stats.Published)),
		Delivered: b.stats.Delivered,
		Dropped:   make(map[Topic]int64, len(b.stats.Dropped)),
	}
	for t, c := range b.stats.Published {
		out.Published[t] = c
	}
	for t, c := range b.stats.Dropped {
		out.Dropped[t] = c
	}
	return out
}

// Close cancels every subscription and rejects further publishes. It does
// not wait for in-flight deliveries; use Subscription.Drain where a test
// needs that.
func (b *Bus) Close() {
	b.mu.Lock()
	if b.closed {
		b.mu.Unlock()
		return
	}
	b.closed = true
	var all []*Subscription
	for _, subs := range b.subs {
		all = append(all, subs...)
	}
	b.subs = make(map[Topic][]*Subscription)
	b.mu.Unlock()
	for _, s := range all {
		s.stop()
	}
}

func (b *Bus) countDelivered() {
	b.statsMu.Lock()
	b.stats.Delivered++
	b.statsMu.Unlock()
	b.obsDelivered.Inc()
}

func (b *Bus) countDropped(topic Topic) {
	b.statsMu.Lock()
	b.stats.Dropped[topic]++
	b.statsMu.Unlock()
	b.obsDropped.Inc()
}

// enqueue appends n to the subscription's ring, applying the bus's
// overflow policy when the ring is at capacity.
func (s *Subscription) enqueue(n Notification) {
	dropped := false
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return
	}
	switch {
	case s.bus.opts.Overflow == OverflowGrow:
		// Legacy unbounded behavior: always make room.
	case s.count < s.bus.opts.QueueCap:
		// Below the bound: room exists (the ring may still need to grow).
	case s.bus.opts.Overflow == OverflowBlock:
		for s.count >= s.bus.opts.QueueCap && !s.closed {
			s.cond.Wait()
		}
		if s.closed {
			s.mu.Unlock()
			return
		}
	default: // OverflowDropOldest
		s.ring[s.head] = Notification{}
		s.head = (s.head + 1) % len(s.ring)
		s.count--
		dropped = true
	}
	s.pushLocked(n)
	depth := s.count
	s.cond.Broadcast()
	s.mu.Unlock()
	if dropped {
		s.bus.countDropped(s.topic)
	}
	s.bus.obsDepth.Observe(float64(depth))
}

// pushLocked appends to the ring, growing it geometrically — up to the
// bound for bounded policies, indefinitely under OverflowGrow. Callers hold
// s.mu and have already ensured capacity exists under the policy.
func (s *Subscription) pushLocked(n Notification) {
	if s.count == len(s.ring) {
		newCap := len(s.ring) * 2
		if newCap == 0 {
			newCap = 16
		}
		if s.bus.opts.Overflow != OverflowGrow && newCap > s.bus.opts.QueueCap {
			newCap = s.bus.opts.QueueCap
		}
		newRing := make([]Notification, newCap)
		for i := 0; i < s.count; i++ {
			newRing[i] = s.ring[(s.head+i)%len(s.ring)]
		}
		s.ring = newRing
		s.head = 0
	}
	s.ring[(s.head+s.count)%len(s.ring)] = n
	s.count++
}

func (s *Subscription) deliverLoop() {
	defer close(s.done)
	for {
		s.mu.Lock()
		for s.count == 0 && !s.closed {
			s.cond.Wait()
		}
		if s.closed && s.count == 0 {
			s.mu.Unlock()
			return
		}
		n := s.ring[s.head]
		s.ring[s.head] = Notification{}
		s.head = (s.head + 1) % len(s.ring)
		s.count--
		// Wake publishers blocked on a full queue (OverflowBlock).
		s.cond.Broadcast()
		s.mu.Unlock()

		// Charge the cross-node delivery cost on the receiving side, so a
		// remote notification arrives later than a local one.
		if s.bus.net != nil && n.FromNode != "" && s.node != "" && n.FromNode != s.node {
			s.bus.net.Link(n.FromNode, s.node).Transmit(s.bus.clock, notificationWireSize)
		}
		s.h(n)
		s.bus.countDelivered()
	}
}

// Cancel removes the subscription; queued notifications are still delivered
// before the goroutine exits.
func (s *Subscription) Cancel() {
	s.bus.mu.Lock()
	subs := s.bus.subs[s.topic]
	for i, other := range subs {
		if other == s {
			s.bus.subs[s.topic] = append(subs[:i:i], subs[i+1:]...)
			break
		}
	}
	s.bus.mu.Unlock()
	s.stop()
}

// Drain blocks until the subscription's goroutine has delivered everything
// and exited. Call Cancel (or Bus.Close) first.
func (s *Subscription) Drain() { <-s.done }

func (s *Subscription) stop() {
	s.mu.Lock()
	if !s.closed {
		s.closed = true
		s.cond.Broadcast()
	}
	s.mu.Unlock()
}
