package chaos_test

import (
	"context"
	"testing"
	"time"

	"repro/internal/chaos"
	"repro/internal/dataset"
	"repro/internal/engine"
	"repro/internal/obs"
	"repro/internal/qerr"
	"repro/internal/services"
	"repro/internal/simnet"
	"repro/internal/ws"
)

// budgetedElasticGrid is elasticGrid with a memory budget small enough that
// the join's build side spills on every evaluator.
func budgetedElasticGrid(t *testing.T, nodes []simnet.NodeID, seqs, ints int, budget int64) (*services.Cluster, *services.GDQS) {
	t.Helper()
	cluster := services.NewCluster(services.ClusterConfig{
		Scale: 10 * time.Microsecond,
		Costs: engine.Costs{ScanMs: 1, FilterMs: 0.01, ProjectMs: 0.01,
			JoinBuildMs: 0.1, JoinProbeMs: 0.5, StartupMs: 50},
		BufferTuples:    25,
		CheckpointEvery: 25,
		Buckets:         64,
	})
	if err := cluster.AddDataNode("data1", dataset.DemoSized(seqs, ints)); err != nil {
		t.Fatal(err)
	}
	for _, n := range nodes {
		if err := cluster.AddComputeNode(n, 1.0,
			ws.NewRegistry(ws.Entropy{CostMs: 5}, ws.SequenceLength{})); err != nil {
			t.Fatal(err)
		}
	}
	cfg := services.DefaultGDQSConfig()
	cfg.Elastic = true
	cfg.QueryTimeout = 60 * time.Second
	cfg.HeartbeatEvery = 10 * time.Millisecond
	cfg.MemoryBudgetBytes = budget
	g, err := services.NewGDQS(cluster, "coord", cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(cluster.Close)
	return cluster, g
}

// parallelBudgetedGrid is budgetedElasticGrid without elasticity: each
// fragment driver runs a width-4 morsel worker pool under the budget, so a
// crash mid-query must fail the query with a typed error instead of
// recovering — and must still tear down every worker's spill state.
func parallelBudgetedGrid(t *testing.T, nodes []simnet.NodeID, seqs, ints int, budget int64) (*services.Cluster, *services.GDQS) {
	t.Helper()
	cluster := services.NewCluster(services.ClusterConfig{
		Scale: 10 * time.Microsecond,
		Costs: engine.Costs{ScanMs: 1, FilterMs: 0.01, ProjectMs: 0.01,
			JoinBuildMs: 0.1, JoinProbeMs: 0.5, StartupMs: 50},
		BufferTuples:    25,
		CheckpointEvery: 25,
		Buckets:         64,
	})
	if err := cluster.AddDataNode("data1", dataset.DemoSized(seqs, ints)); err != nil {
		t.Fatal(err)
	}
	for _, n := range nodes {
		if err := cluster.AddComputeNode(n, 1.0,
			ws.NewRegistry(ws.Entropy{CostMs: 5}, ws.SequenceLength{})); err != nil {
			t.Fatal(err)
		}
	}
	// Adaptive stays on (KillAfterEvents needs monitoring traffic to pick
	// its kill point) but Elastic stays off: no recovery, only teardown.
	cfg := services.DefaultGDQSConfig()
	cfg.QueryTimeout = 60 * time.Second
	cfg.MemoryBudgetBytes = budget
	cfg.Parallelism = 4
	g, err := services.NewGDQS(cluster, "coord", cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(cluster.Close)
	return cluster, g
}

// TestKillEvaluatorMidParallelSpill covers the parallel-spill teardown path:
// four morsel workers per driver spill concurrently under a 4KiB budget. The
// unfaulted run must be exact; the run with an evaluator crash-stopped
// mid-query must fail with a typed error (non-elastic sessions don't
// recover), leak zero spill runs, and return mem_inflight_bytes to zero —
// the cross-worker abort must release every stripe's reservations.
func TestKillEvaluatorMidParallelSpill(t *testing.T) {
	freshObs(t)
	nodes := []simnet.NodeID{"ws0", "ws1", "ws2"}
	want := reference(t, nodes, 300, 400, q2)
	o := obs.Default()

	// Unfaulted width-4 budgeted run: byte-identical rows, real spill.
	_, g := parallelBudgetedGrid(t, nodes, 300, 400, 4096)
	b0 := o.Counter(obs.MSpillBytes).Value()
	res, err := g.Execute(context.Background(), q2)
	if err != nil {
		t.Fatalf("parallel budgeted execute: %v", err)
	}
	assertExact(t, res.Rows, want)
	if o.Counter(obs.MSpillBytes).Value() == b0 {
		t.Fatal("4KiB budget never spilled at width 4")
	}

	// Faulted run: the kill must land mid-query (retry when the query wins
	// the race), fail typed, and leave no spill state behind.
	for attempt := 0; ; attempt++ {
		cluster, g := parallelBudgetedGrid(t, nodes, 300, 400, 4096)
		inj := chaos.New(cluster)
		inj.KillAfterEvents("ws1", "ws1", 2)
		_, err := g.Execute(context.Background(), q2)
		inj.Close()
		if err != nil {
			if kind := qerr.KindOf(err); kind == qerr.KindUnknown {
				t.Fatalf("kill mid-parallel-spill produced an unclassified error: %v", err)
			}
			runs, lerr := g.SpillBackend().List()
			if lerr != nil {
				t.Fatal(lerr)
			}
			if len(runs) != 0 {
				t.Fatalf("spill backend leaks runs after failed parallel query: %v", runs)
			}
			if n := o.Gauge(obs.MMemInflight).Value(); n != 0 {
				t.Fatalf("mem_inflight_bytes = %d after failed parallel query, want 0", n)
			}
			return
		}
		if attempt == 4 {
			t.Fatal("kill landed after query completion in 5 consecutive attempts")
		}
	}
}

// TestKillEvaluatorMidSpill crash-stops a join evaluator while every
// instance is running under a 4KiB budget and spilling build partitions: the
// failover replay must land on a survivor that is itself spilling, results
// must stay byte-identical to the unbudgeted unfaulted run, and no temp run
// may outlive the query — including those of the dead evaluator.
func TestKillEvaluatorMidSpill(t *testing.T) {
	freshObs(t)
	nodes := []simnet.NodeID{"ws0", "ws1", "ws2"}
	want := reference(t, nodes, 300, 400, q2)

	for attempt := 0; ; attempt++ {
		cluster, g := budgetedElasticGrid(t, nodes, 300, 400, 4096)
		inj := chaos.New(cluster)
		inj.KillAfterEvents("ws1", "ws1", 2)

		o := obs.Default()
		b0 := o.Counter(obs.MSpillBytes).Value()
		res, err := g.Execute(context.Background(), q2)
		inj.Close()
		if err != nil {
			t.Fatalf("execute with kill mid-spill: %v", err)
		}
		assertExact(t, res.Rows, want)
		if o.Counter(obs.MSpillBytes).Value() == b0 {
			t.Fatal("4KiB budget never spilled: the kill did not land mid-spill")
		}
		runs, lerr := g.SpillBackend().List()
		if lerr != nil {
			t.Fatal(lerr)
		}
		if len(runs) != 0 {
			t.Fatalf("spill backend leaks runs after faulted query: %v", runs)
		}
		if res.Stats.Failovers >= 1 {
			if cluster.Alive("ws1") {
				t.Fatal("failover counted but ws1 still alive")
			}
			return
		}
		if attempt == 4 {
			t.Fatal("kill landed after query completion in 5 consecutive attempts")
		}
	}
}
