package chaos_test

import (
	"context"
	"runtime"
	"sort"
	"strings"
	"testing"
	"time"

	"repro/internal/chaos"
	"repro/internal/dataset"
	"repro/internal/engine"
	"repro/internal/obs"
	"repro/internal/relation"
	"repro/internal/services"
	"repro/internal/simnet"
	"repro/internal/ws"
)

const (
	q1 = "select EntropyAnalyser(p.sequence) from protein_sequences p"
	q2 = "select i.ORF2 from protein_sequences p, protein_interactions i where i.ORF1=p.ORF"
)

// elasticGrid builds a grid with the given compute nodes and an elastic
// adaptive GDQS. ScanMs is kept high relative to the pipeline so routing is
// still in flight when mid-query faults land.
func elasticGrid(t *testing.T, nodes []simnet.NodeID, seqs, ints int) (*services.Cluster, *services.GDQS) {
	t.Helper()
	cluster := services.NewCluster(services.ClusterConfig{
		Scale: 10 * time.Microsecond,
		Costs: engine.Costs{ScanMs: 1, FilterMs: 0.01, ProjectMs: 0.01,
			JoinBuildMs: 0.1, JoinProbeMs: 0.5, StartupMs: 50},
		BufferTuples:    25,
		CheckpointEvery: 25,
		Buckets:         64,
	})
	if err := cluster.AddDataNode("data1", dataset.DemoSized(seqs, ints)); err != nil {
		t.Fatal(err)
	}
	for _, n := range nodes {
		if err := cluster.AddComputeNode(n, 1.0,
			ws.NewRegistry(ws.Entropy{CostMs: 5}, ws.SequenceLength{})); err != nil {
			t.Fatal(err)
		}
	}
	cfg := services.DefaultGDQSConfig()
	cfg.Elastic = true
	cfg.QueryTimeout = 60 * time.Second
	cfg.HeartbeatEvery = 10 * time.Millisecond
	g, err := services.NewGDQS(cluster, "coord", cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(cluster.Close)
	return cluster, g
}

// sortedRows renders a result set into a canonical form for exactness
// comparison (row order across instances is nondeterministic by design).
func sortedRows(rows []relation.Tuple) []string {
	out := make([]string, len(rows))
	for i, r := range rows {
		var b strings.Builder
		for j, v := range r {
			if j > 0 {
				b.WriteByte('|')
			}
			b.WriteString(v.Format())
		}
		out[i] = b.String()
	}
	sort.Strings(out)
	return out
}

// reference executes the query on an identical unfaulted grid.
func reference(t *testing.T, nodes []simnet.NodeID, seqs, ints int, query string) []string {
	t.Helper()
	_, g := elasticGrid(t, nodes, seqs, ints)
	res, err := g.Execute(context.Background(), query)
	if err != nil {
		t.Fatalf("reference execution: %v", err)
	}
	return sortedRows(res.Rows)
}

func assertExact(t *testing.T, got []relation.Tuple, want []string) {
	t.Helper()
	g := sortedRows(got)
	if len(g) != len(want) {
		t.Fatalf("rows = %d, want %d", len(g), len(want))
	}
	for i := range g {
		if g[i] != want[i] {
			t.Fatalf("row %d = %q, want %q", i, g[i], want[i])
		}
	}
}

// assertNoGoroutineLeak waits for the goroutine count to return to (near)
// its pre-test level; recovery must not strand drivers, heartbeats, or
// watchers.
func assertNoGoroutineLeak(t *testing.T, before int) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for {
		runtime.GC()
		n := runtime.NumGoroutine()
		if n <= before+3 {
			return
		}
		if time.Now().After(deadline) {
			buf := make([]byte, 1<<20)
			t.Fatalf("goroutines = %d, want <= %d\n%s", n, before+3, buf[:runtime.Stack(buf, true)])
		}
		time.Sleep(20 * time.Millisecond)
	}
}

// timelineHas reports whether the observability timeline recorded an event
// of the kind (and outcome, if nonempty) for the node.
func timelineHas(kind obs.EventKind, node, outcome string) bool {
	for _, e := range obs.Default().Timeline().Events() {
		if e.Kind == kind && e.Node == node && (outcome == "" || e.Outcome == outcome) {
			return true
		}
	}
	return false
}

func freshObs(t *testing.T) {
	t.Helper()
	prev := obs.SetDefault(obs.New())
	t.Cleanup(func() { obs.SetDefault(prev) })
}

// TestKillEvaluatorMidQuery is the acceptance scenario: one of three
// evaluators dies while serving an operation-call query; the session must
// detect the failure, replay the dead machine's unacknowledged partitions
// onto the survivors, and still produce byte-identical results — leaving
// failure and recovery events in the timeline and no goroutine behind.
func TestKillEvaluatorMidQuery(t *testing.T) {
	freshObs(t)
	nodes := []simnet.NodeID{"ws0", "ws1", "ws2"}
	want := reference(t, nodes, 400, 0, q1)

	cluster, g := elasticGrid(t, nodes, 400, 0)
	inj := chaos.New(cluster)
	defer inj.Close()
	before := runtime.NumGoroutine()
	inj.KillAfterEvents("ws1", "ws1", 3)

	res, err := g.Execute(context.Background(), q1)
	if err != nil {
		t.Fatalf("execute with mid-query kill: %v", err)
	}
	assertExact(t, res.Rows, want)
	if cluster.Alive("ws1") {
		t.Fatal("ws1 was never killed: the fault did not fire mid-query")
	}
	if res.Stats.Failovers < 1 {
		t.Errorf("failovers = %d, want >= 1", res.Stats.Failovers)
	}
	if !timelineHas(obs.KindFailure, "ws1", "detected") {
		t.Error("timeline missing failure-detected event for ws1")
	}
	if !timelineHas(obs.KindFailure, "ws1", "recovered") {
		t.Error("timeline missing failure-recovered event for ws1")
	}
	if !timelineHas(obs.KindMembership, "ws1", "") {
		t.Error("timeline missing membership leave event for ws1")
	}
	assertNoGoroutineLeak(t, before)
}

// TestKillDuringJoinBuild kills a hash-join evaluator while build tuples
// are still streaming: the dead instance's build partitions must be
// recreated on survivors from the recovery logs.
func TestKillDuringJoinBuild(t *testing.T) {
	freshObs(t)
	nodes := []simnet.NodeID{"ws0", "ws1", "ws2"}
	want := reference(t, nodes, 300, 400, q2)

	cluster, g := elasticGrid(t, nodes, 300, 400)
	inj := chaos.New(cluster)
	defer inj.Close()
	inj.KillAfterEvents("ws1", "ws1", 1)

	res, err := g.Execute(context.Background(), q2)
	if err != nil {
		t.Fatalf("execute with kill during build: %v", err)
	}
	assertExact(t, res.Rows, want)
	if cluster.Alive("ws1") {
		t.Fatal("ws1 was never killed: the fault did not fire mid-query")
	}
	if res.Stats.Failovers < 1 {
		t.Errorf("failovers = %d, want >= 1", res.Stats.Failovers)
	}
}

// TestKillDuringJoinProbe kills the evaluator later in the query, when the
// join is probing: moved bucket state and unacknowledged probe tuples must
// both replay. A late kill can race query completion, so the scenario
// retries until the death actually lands mid-query.
func TestKillDuringJoinProbe(t *testing.T) {
	freshObs(t)
	nodes := []simnet.NodeID{"ws0", "ws1", "ws2"}
	want := reference(t, nodes, 300, 400, q2)

	for attempt := 0; ; attempt++ {
		cluster, g := elasticGrid(t, nodes, 300, 400)
		inj := chaos.New(cluster)
		inj.KillAfterEvents("ws1", "ws1", 12)

		res, err := g.Execute(context.Background(), q2)
		inj.Close()
		if err != nil {
			t.Fatalf("execute with kill during probe: %v", err)
		}
		assertExact(t, res.Rows, want)
		if res.Stats.Failovers >= 1 {
			return
		}
		if attempt == 4 {
			t.Fatal("kill landed after query completion in 5 consecutive attempts")
		}
	}
}

// TestKillDuringReplay overlaps two evaluator deaths: the second machine
// dies while (or right after) the first failover is in flight, so replay
// targets can themselves disappear. The session must re-route instead of
// wedging, and the lone survivor still produces the exact answer.
func TestKillDuringReplay(t *testing.T) {
	freshObs(t)
	nodes := []simnet.NodeID{"ws0", "ws1", "ws2"}
	want := reference(t, nodes, 400, 0, q1)

	cluster, g := elasticGrid(t, nodes, 400, 0)
	inj := chaos.New(cluster)
	defer inj.Close()
	inj.KillAfterEvents("ws1", "ws1", 2)
	inj.KillAfterEvents("ws2", "ws2", 3)

	res, err := g.Execute(context.Background(), q1)
	if err != nil {
		t.Fatalf("execute with overlapping kills: %v", err)
	}
	assertExact(t, res.Rows, want)
	if res.Stats.Failovers < 2 {
		t.Errorf("failovers = %d, want >= 2", res.Stats.Failovers)
	}
}

// TestJoinDuringQuery registers a new compute node while the query runs:
// the session must admit it into the stateless operation-call fragment with
// a nonzero weight share — without restarting — and results stay exact.
func TestJoinDuringQuery(t *testing.T) {
	freshObs(t)
	base := []simnet.NodeID{"ws0", "ws1"}
	want := reference(t, base, 400, 0, q1)

	cluster, g := elasticGrid(t, base, 400, 0)
	done := make(chan struct{})
	joiner := time.AfterFunc(5*time.Millisecond, func() {
		defer close(done)
		if err := cluster.AddComputeNode("ws2", 1.0,
			ws.NewRegistry(ws.Entropy{CostMs: 5}, ws.SequenceLength{})); err != nil {
			t.Errorf("mid-query join: %v", err)
		}
	})
	defer joiner.Stop()

	res, err := g.Execute(context.Background(), q1)
	if err != nil {
		t.Fatalf("execute with mid-query join: %v", err)
	}
	<-done
	assertExact(t, res.Rows, want)
	if res.Stats.NodesJoined < 1 {
		t.Fatalf("nodes joined = %d, want >= 1 (query may have finished before the join landed)", res.Stats.NodesJoined)
	}
	// The admitted instance appears in the per-instance ledger: a third
	// instance (#2) of some fragment exists only if admission succeeded.
	foundThird := false
	for id := range res.Stats.ConsumedByInstance {
		if strings.HasSuffix(id, "#2") {
			foundThird = true
		}
	}
	if !foundThird {
		t.Errorf("no #2 instance in consumption ledger: %v", res.Stats.ConsumedByInstance)
	}
	if !timelineHas(obs.KindMembership, "ws2", "") {
		t.Error("timeline missing membership join event for ws2")
	}
}
