// Package chaos injects faults into a simulated Grid: evaluator crashes,
// slowdowns, and network partitions, at fixed delays or at deterministic
// points in the query's own event stream. It exists for the elastic-cluster
// tests — kill an evaluator mid-query, assert the answer is still exact —
// but is exported-within-the-module so experiments (cmd/dqpctl) can script
// the same faults.
//
// All injections go through the Cluster's public crash-stop machinery, so
// they are exactly as authoritative as a real machine loss: messages fail
// with transport.NodeDownError, uncommitted work vanishes, and a membership
// "leave" event is published.
package chaos

import (
	"sync"
	"time"

	"repro/internal/bus"
	"repro/internal/core"
	"repro/internal/services"
	"repro/internal/simnet"
	"repro/internal/transport"
	"repro/internal/vtime"
)

// Injector scripts faults against one simulated Grid.
type Injector struct {
	cluster *services.Cluster

	mu      sync.Mutex
	timers  []*time.Timer
	cancels []func()
}

// New returns an Injector for the cluster.
func New(cluster *services.Cluster) *Injector {
	return &Injector{cluster: cluster}
}

// Kill crash-stops a machine immediately.
func (in *Injector) Kill(node simnet.NodeID) error {
	return in.cluster.KillNode(node)
}

// Slow multiplies a machine's operator costs by the given factor (1 restores
// nominal speed), modelling external load rather than failure.
func (in *Injector) Slow(node simnet.NodeID, factor float64) {
	if n := in.cluster.Node(node); n != nil {
		n.SetPerturbation(vtime.Multiplier(factor))
	}
}

// Partition severs (or heals, with v=false) the link between two machines:
// messages between them fail while both stay alive — the failure-detector
// case that heartbeat misses, not peer-loss errors, must catch.
func (in *Injector) Partition(a, b simnet.NodeID, v bool) {
	if t, ok := in.cluster.Transport().(*transport.InProc); ok {
		t.SetPartitioned(a, b, v)
	}
}

// KillAfter crash-stops a machine after a real-time delay. The returned
// timer can stop a pending kill; Close stops all of them.
func (in *Injector) KillAfter(node simnet.NodeID, d time.Duration) *time.Timer {
	t := time.AfterFunc(d, func() { _ = in.cluster.KillNode(node) })
	in.mu.Lock()
	in.timers = append(in.timers, t)
	in.mu.Unlock()
	return t
}

// KillAfterEvents crash-stops victim once the machine observed has emitted
// count raw monitoring events — a deterministic mid-query kill point tied
// to query progress rather than wall-clock time. The victim may be the
// observed machine itself. Requires an adaptive GDQS (static evaluators
// emit no monitoring traffic).
func (in *Injector) KillAfterEvents(observed, victim simnet.NodeID, count int) {
	seen := 0
	var once sync.Once
	topic := bus.Topic(core.TopicRawPrefix + string(observed))
	sub := in.cluster.Bus().Subscribe("chaos", observed, topic, func(n bus.Notification) {
		seen++
		if seen >= count {
			once.Do(func() { _ = in.cluster.KillNode(victim) })
		}
	})
	in.mu.Lock()
	in.cancels = append(in.cancels, sub.Cancel)
	in.mu.Unlock()
}

// Close cancels every pending injection (already-fired ones are not
// undone — crash-stops are permanent).
func (in *Injector) Close() {
	in.mu.Lock()
	timers := in.timers
	cancels := in.cancels
	in.timers, in.cancels = nil, nil
	in.mu.Unlock()
	for _, t := range timers {
		t.Stop()
	}
	for _, c := range cancels {
		c()
	}
}
