package services

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/bus"
	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/engine"
	"repro/internal/logical"
	"repro/internal/physical"
	"repro/internal/qerr"
	"repro/internal/relation"
	"repro/internal/simnet"
	"repro/internal/sqlparse"
	"repro/internal/vtime"
	"repro/internal/ws"
)

// queryGoroutines captures the stacks of every goroutine currently inside
// this module's code, excluding the test runner and this file's own
// helpers. It is the leak detector: after a query ends — however it ends —
// no driver, delivery, adaptation or collector goroutine may remain.
func queryGoroutines() []string {
	buf := make([]byte, 1<<20)
	n := runtime.Stack(buf, true)
	var out []string
	for _, g := range strings.Split(string(buf[:n]), "\n\n") {
		if !strings.Contains(g, "repro/internal") {
			continue
		}
		if strings.Contains(g, "testing.tRunner") || strings.Contains(g, "lifecycle_test.go") {
			continue
		}
		out = append(out, g)
	}
	return out
}

// waitNoExtraGoroutines polls until the module goroutine count returns to
// the pre-query baseline. Polling (rather than a single check) tolerates
// teardown that is in flight when the query call returns.
func waitNoExtraGoroutines(t *testing.T, baseline int) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	var gs []string
	for {
		gs = queryGoroutines()
		if len(gs) <= baseline {
			return
		}
		if time.Now().After(deadline) {
			break
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatalf("%d goroutine(s) leaked past the query (baseline %d):\n\n%s",
		len(gs)-baseline, baseline, strings.Join(gs, "\n\n"))
}

// gateService blocks its first invocation until released, signalling the
// test when a fragment driver is genuinely inside a web-service call.
type gateService struct {
	started   chan struct{}
	release   chan struct{}
	startOnce sync.Once
}

func newGateService() *gateService {
	return &gateService{started: make(chan struct{}), release: make(chan struct{})}
}

func (g *gateService) Name() string              { return "GateAnalyser" }
func (g *gateService) ArgTypes() []relation.Type { return []relation.Type{relation.TString} }
func (g *gateService) ResultType() relation.Type { return relation.TFloat }
func (g *gateService) BaseCostMs() float64       { return 1 }
func (g *gateService) Invoke(args []relation.Value) (relation.Value, error) {
	g.startOnce.Do(func() { close(g.started) })
	<-g.release
	return relation.Float(1), nil
}

// slowService really sleeps per call, so a short QueryTimeout expires while
// fragments are still mid-stream.
type slowService struct{ d time.Duration }

func (s slowService) Name() string              { return "SlowAnalyser" }
func (s slowService) ArgTypes() []relation.Type { return []relation.Type{relation.TString} }
func (s slowService) ResultType() relation.Type { return relation.TFloat }
func (s slowService) BaseCostMs() float64       { return 1 }
func (s slowService) Invoke(args []relation.Value) (relation.Value, error) {
	time.Sleep(s.d)
	return relation.Float(1), nil
}

// failService fails every invocation — the fragment-error exit path.
type failService struct{}

func (failService) Name() string              { return "FailAnalyser" }
func (failService) ArgTypes() []relation.Type { return []relation.Type{relation.TString} }
func (failService) ResultType() relation.Type { return relation.TFloat }
func (failService) BaseCostMs() float64       { return 1 }
func (failService) Invoke(args []relation.Value) (relation.Value, error) {
	return relation.Null, fmt.Errorf("ws: FailAnalyser always fails")
}

// lifecycleGrid is testGrid plus extra web services on the compute nodes.
func lifecycleGrid(t *testing.T, adaptive bool, seqs, ints int, extra ...ws.Service) (*Cluster, *GDQS) {
	t.Helper()
	cluster := NewCluster(ClusterConfig{
		Scale: 10 * time.Microsecond,
		Costs: engine.Costs{ScanMs: 0.5, FilterMs: 0.01, ProjectMs: 0.01,
			JoinBuildMs: 0.05, JoinProbeMs: 0.3, StartupMs: 50},
		BufferTuples:    25,
		CheckpointEvery: 25,
		Buckets:         64,
	})
	if err := cluster.AddDataNode("data1", dataset.DemoSized(seqs, ints)); err != nil {
		t.Fatal(err)
	}
	svcs := append([]ws.Service{ws.Entropy{CostMs: 5}, ws.SequenceLength{}}, extra...)
	for _, n := range []simnet.NodeID{"ws0", "ws1"} {
		if err := cluster.AddComputeNode(n, 1.0, ws.NewRegistry(svcs...)); err != nil {
			t.Fatal(err)
		}
	}
	cfg := DefaultGDQSConfig()
	cfg.Adaptive = adaptive
	cfg.QueryTimeout = 60 * time.Second
	g, err := NewGDQS(cluster, "coord", cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(cluster.Close)
	return cluster, g
}

func TestLifecycleSuccessReleasesGoroutines(t *testing.T) {
	_, g := lifecycleGrid(t, true, 120, 60)
	baseline := len(queryGoroutines())
	res, err := g.Execute(context.Background(), q1)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 120 {
		t.Fatalf("rows = %d, want 120", len(res.Rows))
	}
	waitNoExtraGoroutines(t, baseline)
}

func TestLifecycleCancelReleasesGoroutines(t *testing.T) {
	gate := newGateService()
	_, g := lifecycleGrid(t, true, 120, 60, gate)
	baseline := len(queryGoroutines())

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	errCh := make(chan error, 1)
	go func() {
		_, err := g.Execute(ctx, "select GateAnalyser(p.sequence) from protein_sequences p")
		errCh <- err
	}()

	// Cancel while a fragment driver is provably inside a service call.
	<-gate.started
	cancel()
	close(gate.release)

	err := <-errCh
	if !errors.Is(err, qerr.ErrCanceled) {
		t.Fatalf("err = %v, want qerr.ErrCanceled", err)
	}
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v does not unwrap to context.Canceled", err)
	}
	waitNoExtraGoroutines(t, baseline)

	// Released state: the same coordinator runs the next query cleanly.
	res, err := g.Execute(context.Background(), q1)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 120 {
		t.Fatalf("follow-up rows = %d, want 120", len(res.Rows))
	}
	waitNoExtraGoroutines(t, baseline)
}

func TestLifecycleTimeoutReleasesGoroutines(t *testing.T) {
	cluster, _ := lifecycleGrid(t, true, 120, 60, slowService{d: time.Millisecond})
	cfg := DefaultGDQSConfig()
	cfg.QueryTimeout = 30 * time.Millisecond
	g, err := NewGDQS(cluster, "coordT", cfg)
	if err != nil {
		t.Fatal(err)
	}
	baseline := len(queryGoroutines())
	_, err = g.Execute(context.Background(), "select SlowAnalyser(p.sequence) from protein_sequences p")
	if !errors.Is(err, qerr.ErrTimeout) {
		t.Fatalf("err = %v, want qerr.ErrTimeout", err)
	}
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v does not unwrap to context.DeadlineExceeded", err)
	}
	waitNoExtraGoroutines(t, baseline)
}

func TestLifecycleFragmentErrorReleasesGoroutines(t *testing.T) {
	_, g := lifecycleGrid(t, true, 120, 60, failService{})
	baseline := len(queryGoroutines())
	_, err := g.Execute(context.Background(), "select FailAnalyser(p.sequence) from protein_sequences p")
	if err == nil {
		t.Fatal("expected fragment error")
	}
	var qe *qerr.Error
	if !errors.As(err, &qe) || qe.Kind != qerr.KindExec {
		t.Fatalf("err = %v, want *qerr.Error with KindExec", err)
	}
	if errors.Is(err, qerr.ErrCanceled) || errors.Is(err, qerr.ErrTimeout) {
		t.Fatalf("fragment failure misclassified as cancellation: %v", err)
	}
	if !strings.Contains(err.Error(), "FailAnalyser") {
		t.Fatalf("err = %v does not name the failing service", err)
	}
	waitNoExtraGoroutines(t, baseline)
}

// cancelOnTopic cancels ctx the first time anything is published on the
// topic, optionally after a delay — pinning cancellation to a precise phase
// of the adaptivity protocol.
func cancelOnTopic(t *testing.T, cluster *Cluster, topic bus.Topic, delay time.Duration, cancel context.CancelFunc) *bus.Subscription {
	t.Helper()
	var once sync.Once
	sub := cluster.bus.Subscribe("lifecycle-watch", "coord", topic, func(bus.Notification) {
		once.Do(func() {
			if delay > 0 {
				time.Sleep(delay)
			}
			cancel()
		})
	})
	t.Cleanup(sub.Cancel)
	return sub
}

func TestLifecycleCancelMidAdaptation(t *testing.T) {
	// Cancel exactly when the Diagnoser hands the Responder a rebalancing
	// proposal: the Responder is about to (or has just started to) run the
	// quiesce/redistribute protocol against live fragments.
	cluster, _ := lifecycleGrid(t, true, 300, 60)
	cluster.Node("ws1").SetPerturbation(vtime.Multiplier(10))
	cfg := DefaultGDQSConfig()
	cfg.Responder.Response = core.R1
	cfg.QueryTimeout = 60 * time.Second
	g, err := NewGDQS(cluster, "coordA", cfg)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	cancelOnTopic(t, cluster, core.TopicDiagnosis, 0, cancel)
	baseline := len(queryGoroutines())

	_, err = g.Execute(ctx, q1)
	if !errors.Is(err, qerr.ErrCanceled) {
		t.Fatalf("err = %v, want qerr.ErrCanceled", err)
	}
	waitNoExtraGoroutines(t, baseline)

	// Released state: a full adaptive run on the same cluster still works.
	res, err := g.Execute(context.Background(), q1)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 300 {
		t.Fatalf("follow-up rows = %d, want 300", len(res.Rows))
	}
	waitNoExtraGoroutines(t, baseline)
}

func TestLifecycleCancelMidReplay(t *testing.T) {
	// Q2's expensive operator is a stateful hash join: rebalancing it goes
	// through the R1 state-replay path. Cancelling shortly after the first
	// proposal lands inside (or racing with) that replay; either way the
	// query must come back ErrCanceled with nothing left running.
	cluster, g := lifecycleGrid(t, true, 150, 600)
	cluster.Node("ws1").SetPerturbation(vtime.Sleep(3))
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	cancelOnTopic(t, cluster, core.TopicDiagnosis, 300*time.Microsecond, cancel)
	baseline := len(queryGoroutines())

	_, err := g.Execute(ctx, q2)
	if !errors.Is(err, qerr.ErrCanceled) {
		t.Fatalf("err = %v, want qerr.ErrCanceled", err)
	}
	waitNoExtraGoroutines(t, baseline)

	// Released state: the same join, uncancelled, still yields correct rows.
	res, err := g.Execute(context.Background(), q2)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) == 0 {
		t.Fatal("follow-up join returned no rows")
	}
	waitNoExtraGoroutines(t, baseline)
}

func TestLifecycleSessionCloseIdempotent(t *testing.T) {
	_, g := lifecycleGrid(t, true, 50, 30)
	stmt, err := sqlparse.Parse(q1)
	if err != nil {
		t.Fatal(err)
	}
	lplan, err := logical.Plan(stmt, g.cluster.catalog)
	if err != nil {
		t.Fatal(err)
	}
	pplan, err := physical.Schedule(lplan, g.cluster.registry, physical.Options{Coordinator: g.node})
	if err != nil {
		t.Fatal(err)
	}
	pplan.Tag("qlifecycle")
	if err := pplan.Validate(); err != nil {
		t.Fatal(err)
	}
	s, err := newQuerySession(context.Background(), g, pplan)
	if err != nil {
		t.Fatal(err)
	}
	// Close must be safe to call repeatedly and concurrently with the
	// per-resource Stops it performs itself.
	s.Close()
	s.Close()
	for _, rt := range s.runtimes {
		rt.Stop()
		rt.Stop()
	}
	for _, m := range s.meds {
		m.Stop()
	}
	s.diagnoser.Stop()
	s.responder.Stop()
	waitNoExtraGoroutines(t, 0)
}
