package services

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/obs"
	"repro/internal/vtime"
)

// TestObservabilityEndToEnd drives one adaptive, perturbed query and then
// reads the whole story back through the observability layer: /metrics must
// carry the per-operator and adaptation counters, and /timeline must replay
// the full M1 average → proposal → deployment sequence.
func TestObservabilityEndToEnd(t *testing.T) {
	// A fresh layer isolates this test's counters from the rest of the
	// package run; components resolve handles at construction, so the swap
	// must precede the cluster build.
	prev := obs.SetDefault(obs.New())
	t.Cleanup(func() { obs.SetDefault(prev) })

	cluster, _ := testGrid(t, true, 300, 100)
	cluster.Node("ws1").SetPerturbation(vtime.Multiplier(10))
	cfg := DefaultGDQSConfig()
	cfg.Responder.Response = core.R1
	cfg.QueryTimeout = 60 * time.Second
	g, err := NewGDQS(cluster, "coordObs", cfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := g.Execute(context.Background(), q1)
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.Adaptations == 0 {
		t.Fatalf("no adaptation happened: %+v", res.Stats)
	}
	var partitioned string
	for _, frag := range res.Stats.Plan.Fragments {
		if frag.Partitioned {
			partitioned = frag.ID
		}
	}
	if partitioned == "" {
		t.Fatal("plan has no partitioned fragment")
	}

	srv := httptest.NewServer(obs.Handler(obs.Default()))
	defer srv.Close()

	// /metrics: per-operator tuple and batch counters, bus activity,
	// monitoring counters, and adaptation outcomes must all be present.
	resp, err := srv.Client().Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	metrics := string(body)
	for _, want := range []string{
		fmt.Sprintf(`engine_tuples_produced_total{fragment=%q}`, partitioned),
		"engine_batch_size_bucket",
		"exchange_tuples_routed_total",
		"exchange_tuples_consumed_total",
		"bus_published_total",
		"bus_dropped_total",
		"bus_queue_depth_bucket",
		"med_raw_events_total",
		"med_notifications_total",
		"diagnoser_proposals_total",
		`adaptations_total{outcome="adapted"}`,
		"adaptation_duration_ms_count",
		"rpc_latency_ms_count",
		"transport_messages_total",
		`queries_total{outcome="ok"} 1`,
		"sessions_open 0",
	} {
		if !strings.Contains(metrics, want) {
			t.Errorf("/metrics missing %q", want)
		}
	}
	if t.Failed() {
		t.Logf("metrics dump:\n%s", metrics)
		t.FailNow()
	}

	// /timeline: the adaptation story must appear in causal order for the
	// partitioned fragment — a windowed-average notification, then the
	// Diagnoser's proposal with weight vectors, then the deployed outcome.
	resp, err = srv.Client().Get(srv.URL + "/timeline?fragment=" + partitioned)
	if err != nil {
		t.Fatal(err)
	}
	var dump struct {
		Events []obs.Event `json:"events"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&dump); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	first := map[obs.EventKind]int64{}
	for _, e := range dump.Events {
		if _, seen := first[e.Kind]; !seen {
			first[e.Kind] = e.Seq
		}
		if e.Kind == obs.KindProposal && (len(e.OldWeights) == 0 || len(e.NewWeights) == 0) {
			t.Errorf("proposal event without weight vectors: %+v", e)
		}
	}
	notify, okN := first[obs.KindMEDNotify]
	proposal, okP := first[obs.KindProposal]
	outcome, okO := first[obs.KindOutcome]
	if !okN || !okP || !okO {
		t.Fatalf("timeline misses stages (notify=%v proposal=%v outcome=%v): %+v",
			okN, okP, okO, dump.Events)
	}
	if !(notify < proposal && proposal < outcome) {
		t.Fatalf("timeline out of order: notify=%d proposal=%d outcome=%d", notify, proposal, outcome)
	}
	adapted := false
	for _, e := range dump.Events {
		if e.Kind == obs.KindOutcome && e.Outcome == "adapted" {
			adapted = true
		}
	}
	if !adapted {
		t.Fatalf("no adapted outcome on the timeline: %+v", dump.Events)
	}
}
