package services

import (
	"container/list"
	"context"
	"fmt"
	"sync"
	"time"

	"repro/internal/obs"
	"repro/internal/qerr"
)

// Admission-control defaults: enough concurrency to load the parallel
// engine, and a queue deep enough that short bursts from many clients wait
// rather than fail.
const (
	DefaultMaxConcurrent = 8
	DefaultMaxQueue      = 1024
)

// admission bounds the number of concurrently running QuerySessions per
// coordinator. Arrivals beyond the concurrency bound wait in strict FIFO
// order — a plain Go semaphore channel wakes waiters in unspecified order,
// so fairness needs an explicit queue — and arrivals beyond the queue bound
// are rejected immediately with a typed admission error. A released slot is
// handed directly to the queue head, so the bound is never exceeded and no
// waiter can be overtaken.
type admission struct {
	maxConcurrent int
	maxQueue      int
	queueTimeout  time.Duration // 0: bounded only by the caller's ctx

	mu      sync.Mutex
	inUse   int
	waiters *list.List // of *waiter, front = longest waiting

	queued   *obs.Counter
	rejected *obs.Counter
	waiting  *obs.Gauge
	queueMs  *obs.Histogram
}

// waiter is one queued arrival; grant closes ch while holding the admission
// lock, after removing the waiter from the queue.
type waiter struct {
	ch chan struct{}
}

func newAdmission(maxConcurrent, maxQueue int, queueTimeout time.Duration, reg *obs.Registry) *admission {
	if maxConcurrent <= 0 {
		maxConcurrent = DefaultMaxConcurrent
	}
	if maxQueue <= 0 {
		maxQueue = DefaultMaxQueue
	}
	a := &admission{
		maxConcurrent: maxConcurrent,
		maxQueue:      maxQueue,
		queueTimeout:  queueTimeout,
		waiters:       list.New(),
		queued:        reg.Counter(obs.MAdmissionQueued),
		rejected:      reg.Counter(obs.MAdmissionRejected),
		waiting:       reg.Gauge(obs.MAdmissionWaiting),
		queueMs:       reg.Histogram(obs.MAdmissionQueueMs, obs.DefBucketsLatencyMs),
	}
	return a
}

// acquire blocks until the caller may start a session, the queue-time budget
// runs out, or ctx is done. On success it returns the release function the
// caller must run when its session ends.
func (a *admission) acquire(ctx context.Context) (release func(), err error) {
	start := time.Now()
	a.mu.Lock()
	if a.inUse < a.maxConcurrent {
		a.inUse++
		a.mu.Unlock()
		a.queueMs.Observe(0)
		return a.release, nil
	}
	if a.waiters.Len() >= a.maxQueue {
		a.mu.Unlock()
		a.rejected.Inc()
		return nil, qerr.Admission("admit", fmt.Errorf("%w (%d running, %d queued)",
			qerr.ErrRejected, a.maxConcurrent, a.maxQueue))
	}
	w := &waiter{ch: make(chan struct{})}
	el := a.waiters.PushBack(w)
	a.waiting.Set(int64(a.waiters.Len()))
	a.mu.Unlock()
	a.queued.Inc()

	var timeout <-chan time.Time
	if a.queueTimeout > 0 {
		t := time.NewTimer(a.queueTimeout)
		defer t.Stop()
		timeout = t.C
	}
	select {
	case <-w.ch:
		a.queueMs.Observe(float64(time.Since(start)) / float64(time.Millisecond))
		return a.release, nil
	case <-ctx.Done():
		return nil, a.abandon(el, qerr.Admission("queue", qerr.FromContext(ctx)))
	case <-timeout:
		return nil, a.abandon(el, qerr.Admission("queue",
			fmt.Errorf("queue wait exceeded %v: %w", a.queueTimeout, qerr.ErrTimeout)))
	}
}

// abandon removes a waiter that gave up. If the slot was granted in the
// window between the waiter's select losing and the lock being taken, the
// grant is passed straight on, preserving the concurrency bound.
func (a *admission) abandon(el *list.Element, err error) error {
	a.mu.Lock()
	w := el.Value.(*waiter)
	select {
	case <-w.ch:
		// Granted concurrently (grants happen lock-held, so this is
		// settled by now): hand the slot to the next waiter or free it.
		a.releaseLocked()
		a.mu.Unlock()
	default:
		a.waiters.Remove(el)
		a.waiting.Set(int64(a.waiters.Len()))
		a.mu.Unlock()
	}
	return err
}

// release frees one slot: the longest-waiting queued arrival inherits it
// directly, otherwise the running count drops.
func (a *admission) release() {
	a.mu.Lock()
	a.releaseLocked()
	a.mu.Unlock()
}

func (a *admission) releaseLocked() {
	if el := a.waiters.Front(); el != nil {
		a.waiters.Remove(el)
		a.waiting.Set(int64(a.waiters.Len()))
		close(el.Value.(*waiter).ch)
		return
	}
	a.inUse--
}
