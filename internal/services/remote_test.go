package services

import (
	"context"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/simnet"
	"repro/internal/transport"
	"repro/internal/vtime"
)

// remoteCluster spins a coordinator and three evaluators, each with its own
// TCP transport on localhost — separate transports exactly as separate
// processes would have.
func remoteCluster(t *testing.T, adaptive bool) (*RemoteCoordinator, map[simnet.NodeID]*Evaluator) {
	t.Helper()
	manifest := Manifest{
		Scale: 2 * time.Microsecond,
		Costs: engine.Costs{ScanMs: 0.5, FilterMs: 0.01, ProjectMs: 0.01,
			JoinBuildMs: 0.05, JoinProbeMs: 0.3, StartupMs: 20},
		Coordinator: "coord",
		DataNodes:   []DataNodeSpec{{Node: "data1", Sequences: 200, Interactions: 300}},
		Compute: []ComputeNodeSpec{
			{Node: "ws0", Speed: 1, EntropyCostMs: 3},
			{Node: "ws1", Speed: 1, EntropyCostMs: 3},
		},
		Adaptive: adaptive,
		Response: core.R1,
	}

	nodes := []simnet.NodeID{"coord", "data1", "ws0", "ws1"}
	transports := make(map[simnet.NodeID]*transport.TCP, len(nodes))
	for _, n := range nodes {
		tr, err := transport.NewTCP(n, "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		transports[n] = tr
		t.Cleanup(func() { _ = tr.Close() })
	}
	for _, a := range nodes {
		for _, b := range nodes {
			if a != b {
				transports[a].AddPeer(b, transports[b].Addr())
			}
		}
	}

	evaluators := make(map[simnet.NodeID]*Evaluator)
	for _, n := range []simnet.NodeID{"data1", "ws0", "ws1"} {
		ev, err := NewEvaluator(manifest, n, transports[n])
		if err != nil {
			t.Fatal(err)
		}
		evaluators[n] = ev
		t.Cleanup(ev.Close)
	}
	coord, err := NewRemoteCoordinator(manifest, transports["coord"])
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(coord.Close)
	return coord, evaluators
}

func TestRemoteQ1OverTCP(t *testing.T) {
	coord, _ := remoteCluster(t, false)
	res, err := coord.Execute(context.Background(), q1, time.Minute)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 200 {
		t.Fatalf("rows = %d, want 200", len(res.Rows))
	}
	for _, r := range res.Rows {
		if h := r[0].AsFloat(); h <= 0 || h > 8 {
			t.Fatalf("bad entropy %v", h)
		}
	}
}

func TestRemoteQ2OverTCP(t *testing.T) {
	coord, _ := remoteCluster(t, false)
	res, err := coord.Execute(context.Background(), q2, time.Minute)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 300 {
		t.Fatalf("rows = %d, want 300", len(res.Rows))
	}
}

func TestRemoteAdaptiveOverTCP(t *testing.T) {
	coord, evaluators := remoteCluster(t, true)
	evaluators["ws1"].SetPerturbation(vtime.Multiplier(50))
	res, err := coord.Execute(context.Background(), q1, 2*time.Minute)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 200 {
		t.Fatalf("rows = %d, want 200 (no loss under remote adaptation)", len(res.Rows))
	}
	if res.Stats.Adaptations == 0 {
		t.Error("remote adaptive run never adapted")
	}
}

func TestRemoteSequentialQueries(t *testing.T) {
	coord, _ := remoteCluster(t, false)
	for i := 0; i < 2; i++ {
		res, err := coord.Execute(context.Background(), q1, time.Minute)
		if err != nil {
			t.Fatalf("query %d: %v", i, err)
		}
		if len(res.Rows) != 200 {
			t.Fatalf("query %d: rows = %d", i, len(res.Rows))
		}
	}
}

func TestRemoteBadQuery(t *testing.T) {
	coord, _ := remoteCluster(t, false)
	if _, err := coord.Execute(context.Background(), "select nope from nothing", time.Minute); err == nil {
		t.Fatal("bad query accepted")
	}
}
