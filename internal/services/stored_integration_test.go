package services

import (
	"context"
	"os"
	"strconv"
	"testing"
	"time"

	"repro/internal/dataset"
	"repro/internal/engine"
	"repro/internal/obs"
	"repro/internal/relation"
	"repro/internal/simnet"
	"repro/internal/storage"
	"repro/internal/ws"
)

// storedGrid builds a grid whose demo tables live as block-framed runs on
// tables (posix or memory), separate from the coordinator's spill backend,
// and returns a coordinator with the given scan/memory configuration.
func storedGrid(t *testing.T, tables storage.Backend, seqs, ints int, mut func(*GDQSConfig)) (*Cluster, *GDQS) {
	t.Helper()
	cluster := NewCluster(ClusterConfig{
		Scale: 10 * time.Microsecond,
		Costs: engine.Costs{ScanMs: 0.5, FilterMs: 0.01, ProjectMs: 0.01,
			JoinBuildMs: 0.05, JoinProbeMs: 0.3, StartupMs: 50},
		BufferTuples:    25,
		CheckpointEvery: 25,
		Buckets:         64,
	})
	store, err := dataset.DemoStored(tables, seqs, ints)
	if err != nil {
		t.Fatal(err)
	}
	if err := cluster.AddDataNode("data1", store); err != nil {
		t.Fatal(err)
	}
	for _, n := range []simnet.NodeID{"ws0", "ws1"} {
		if err := cluster.AddComputeNode(n, 1.0,
			ws.NewRegistry(ws.Entropy{CostMs: 5}, ws.SequenceLength{})); err != nil {
			t.Fatal(err)
		}
	}
	cfg := DefaultGDQSConfig()
	cfg.Adaptive = false
	cfg.QueryTimeout = 120 * time.Second
	if mut != nil {
		mut(&cfg)
	}
	g, err := NewGDQS(cluster, "coord", cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(cluster.Close)
	return cluster, g
}

// sameRows compares two result row sets by canonical encoding.
func sameRows(t *testing.T, label string, want, got []relation.Tuple) {
	t.Helper()
	if len(want) != len(got) {
		t.Fatalf("%s: %d rows, want %d", label, len(got), len(want))
	}
	for i := range want {
		if string(relation.EncodeTuple(want[i])) != string(relation.EncodeTuple(got[i])) {
			t.Fatalf("%s: row %d diverged:\n%v\n%v",
				label, i, got[i].Format(), want[i].Format())
		}
	}
}

// TestStoredTableQueryMatchesInMemory runs the acceptance join+aggregate over
// stored tables on both backends, serial, and demands byte-identical rows to
// the in-memory run.
func TestStoredTableQueryMatchesInMemory(t *testing.T) {
	const seqs, ints = 300, 900
	_, ref := spillGrid(t, seqs, ints, 0, "")
	want, err := ref.Execute(context.Background(), qJoinAgg)
	if err != nil {
		t.Fatal(err)
	}
	if len(want.Rows) == 0 {
		t.Fatal("reference run produced no rows")
	}
	posix, err := storage.NewPosix(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	tables := map[string]storage.Backend{"memory": storage.NewMemory(), "posix": posix}
	for name, backend := range tables {
		t.Run(name, func(t *testing.T) {
			defer backend.Close()
			o := obs.Default()
			blocks0 := o.Counter(obs.MScanBlocksRead).Value()
			_, g := storedGrid(t, backend, seqs, ints, nil)
			got, err := g.Execute(context.Background(), qJoinAgg)
			if err != nil {
				t.Fatalf("stored execute: %v", err)
			}
			sameRows(t, name, want.Rows, got.Rows)
			if o.Counter(obs.MScanBlocksRead).Value() == blocks0 {
				t.Fatal("query never took the block-scan path")
			}
		})
	}
}

// TestStoredScanParallelParity runs the stored-table scan morsel-parallel at
// widths 1, 2 and 4 and demands row parity with the serial in-memory
// reference, zero inflight bytes and no leaked spill runs at every width.
func TestStoredScanParallelParity(t *testing.T) {
	const seqs, ints = 300, 900
	_, ref := spillGrid(t, seqs, ints, 0, "")
	want, err := ref.Execute(context.Background(), qJoinAgg)
	if err != nil {
		t.Fatal(err)
	}

	for _, width := range []int{1, 2, 4} {
		t.Run("width-"+strconv.Itoa(width), func(t *testing.T) {
			backend, err := storage.NewPosix(t.TempDir())
			if err != nil {
				t.Fatal(err)
			}
			defer backend.Close()
			_, g := storedGrid(t, backend, seqs, ints, func(cfg *GDQSConfig) {
				cfg.Parallelism = width
				cfg.MemoryBudgetBytes = 1 << 20
			})
			got, err := g.Execute(context.Background(), qJoinAgg)
			if err != nil {
				t.Fatalf("width %d: %v", width, err)
			}
			sameRows(t, "parallel", want.Rows, got.Rows)
			if n := obs.Default().Gauge(obs.MMemInflight).Value(); n != 0 {
				t.Fatalf("width %d: mem_inflight_bytes = %d, want 0", width, n)
			}
			runs, err := g.SpillBackend().List()
			if err != nil {
				t.Fatal(err)
			}
			if len(runs) != 0 {
				t.Fatalf("width %d: leaked spill runs %v", width, runs)
			}
		})
	}
}

// TestStoredScanReadaheadModes replays the stored-table query synchronous,
// double-buffered and deep, expecting identical rows each way.
func TestStoredScanReadaheadModes(t *testing.T) {
	const seqs, ints = 300, 900
	_, ref := spillGrid(t, seqs, ints, 0, "")
	want, err := ref.Execute(context.Background(), qJoinAgg)
	if err != nil {
		t.Fatal(err)
	}
	for _, depth := range []int{-1, 0, 4} {
		backend, err := storage.NewPosix(t.TempDir())
		if err != nil {
			t.Fatal(err)
		}
		_, g := storedGrid(t, backend, seqs, ints, func(cfg *GDQSConfig) {
			cfg.ScanReadahead = depth
		})
		got, err := g.Execute(context.Background(), qJoinAgg)
		if err != nil {
			t.Fatalf("depth %d: %v", depth, err)
		}
		sameRows(t, "readahead", want.Rows, got.Rows)
		backend.Close()
	}
}

// TestStoredOrderByLimitFusion checks the fused Top-N path end to end: an
// ORDER BY + LIMIT query over stored tables must match the unlimited ordering
// truncated by hand.
func TestStoredOrderByLimitFusion(t *testing.T) {
	const qFull = "select i.ORF1, count(*) AS n from protein_interactions i group by i.ORF1 order by n desc, i.ORF1"
	const qTop = qFull + " limit 7"
	_, ref := spillGrid(t, 200, 700, 0, "")
	full, err := ref.Execute(context.Background(), qFull)
	if err != nil {
		t.Fatal(err)
	}
	if len(full.Rows) <= 7 {
		t.Fatalf("reference has only %d rows", len(full.Rows))
	}
	backend := storage.NewMemory()
	defer backend.Close()
	_, g := storedGrid(t, backend, 200, 700, func(cfg *GDQSConfig) {
		cfg.MemoryBudgetBytes = 1 << 20
	})
	got, err := g.Execute(context.Background(), qTop)
	if err != nil {
		t.Fatal(err)
	}
	sameRows(t, "topn", full.Rows[:7], got.Rows)
	if n := obs.Default().Gauge(obs.MMemInflight).Value(); n != 0 {
		t.Fatalf("mem_inflight_bytes = %d after Top-N query, want 0", n)
	}
}

// TestBigTableStoredScan is the tentpole acceptance scenario: posix-stored
// tables at least 16x the query memory budget stream through the acceptance
// join+aggregate, producing rows byte-identical to the in-memory run, with
// zero leaked runs and zero inflight bytes. GRIDDQP_BIGTABLE_ROWS scales the
// protein_sequences cardinality up (default 3000; interactions follow at the
// demo ratio) — `make bigtable` runs it at the default, CI may push it
// multi-GB.
func TestBigTableStoredScan(t *testing.T) {
	seqs := 3000
	if env := os.Getenv("GRIDDQP_BIGTABLE_ROWS"); env != "" {
		n, err := strconv.Atoi(env)
		if err != nil || n <= 0 {
			t.Fatalf("GRIDDQP_BIGTABLE_ROWS=%q invalid", env)
		}
		seqs = n
	}
	ints := seqs * 47 / 30 // the demo 3000:4700 ratio

	_, ref := spillGrid(t, seqs, ints, 0, "")
	want, err := ref.Execute(context.Background(), qJoinAgg)
	if err != nil {
		t.Fatal(err)
	}
	if len(want.Rows) == 0 {
		t.Fatal("reference run produced no rows")
	}

	backend, err := storage.NewPosix(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	defer backend.Close()
	cluster, g := storedGrid(t, backend, seqs, ints, func(cfg *GDQSConfig) {
		cfg.SpillDir = t.TempDir()
	})
	// Budget from the catalog's stored-table volume: tables must dwarf it.
	var total int64
	for _, name := range []string{"protein_sequences", "protein_interactions"} {
		meta, err := cluster.Catalog().Table(name)
		if err != nil {
			t.Fatal(err)
		}
		if meta.TotalBytes <= 0 {
			t.Fatalf("catalog TotalBytes missing for %q", name)
		}
		total += meta.TotalBytes
	}
	budget := total / 16
	g.SetMemoryBudget(budget)

	o := obs.Default()
	blocks0 := o.Counter(obs.MScanBlocksRead).Value()
	got, err := g.Execute(context.Background(), qJoinAgg)
	if err != nil {
		t.Fatalf("bigtable execute (%d rows, budget %d): %v", seqs, budget, err)
	}
	sameRows(t, "bigtable", want.Rows, got.Rows)
	if o.Counter(obs.MScanBlocksRead).Value() == blocks0 {
		t.Fatal("bigtable run never read stored blocks")
	}
	if n := o.Gauge(obs.MMemInflight).Value(); n != 0 {
		t.Fatalf("mem_inflight_bytes = %d after bigtable query, want 0", n)
	}
	runs, err := g.SpillBackend().List()
	if err != nil {
		t.Fatal(err)
	}
	if len(runs) != 0 {
		t.Fatalf("spill backend leaks runs: %v", runs)
	}
	// The base tables themselves must still be intact on their own backend.
	names, err := backend.List()
	if err != nil {
		t.Fatal(err)
	}
	if len(names) != 2 {
		t.Fatalf("table backend holds %v, want the two base runs", names)
	}
}
