package services

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/obs"
	"repro/internal/qerr"
)

func TestAdmissionImmediateBelowBound(t *testing.T) {
	a := newAdmission(2, 4, 0, obs.NewRegistry())
	r1, err := a.acquire(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	r2, err := a.acquire(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	r1()
	r2()
	r3, err := a.acquire(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	r3()
}

func TestAdmissionFIFOOrder(t *testing.T) {
	reg := obs.NewRegistry()
	a := newAdmission(1, 16, 0, reg)
	release, err := a.acquire(context.Background())
	if err != nil {
		t.Fatal(err)
	}

	const n = 8
	var order []int
	var mu sync.Mutex
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		// Enqueue strictly one at a time, so queue order is known.
		before := reg.Counter(obs.MAdmissionQueued).Value()
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			r, err := a.acquire(context.Background())
			if err != nil {
				t.Errorf("waiter %d: %v", i, err)
				return
			}
			mu.Lock()
			order = append(order, i)
			mu.Unlock()
			r()
		}(i)
		for reg.Counter(obs.MAdmissionQueued).Value() == before {
			time.Sleep(time.Millisecond)
		}
	}
	release() // cascade: each waiter hands the slot to the next
	wg.Wait()
	for i, got := range order {
		if got != i {
			t.Fatalf("grant order = %v, want FIFO", order)
		}
	}
	if w := reg.Gauge(obs.MAdmissionWaiting).Value(); w != 0 {
		t.Fatalf("waiting gauge = %d after drain", w)
	}
}

func TestAdmissionRejectsBeyondQueue(t *testing.T) {
	reg := obs.NewRegistry()
	a := newAdmission(1, 1, 0, reg)
	release, err := a.acquire(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	defer release()

	queued := make(chan struct{})
	go func() {
		close(queued)
		r, err := a.acquire(context.Background())
		if err == nil {
			r()
		}
	}()
	<-queued
	for reg.Counter(obs.MAdmissionQueued).Value() == 0 {
		time.Sleep(time.Millisecond)
	}

	_, err = a.acquire(context.Background())
	if !errors.Is(err, qerr.ErrRejected) {
		t.Fatalf("err = %v, want ErrRejected", err)
	}
	if qerr.KindOf(err) != qerr.KindAdmission {
		t.Fatalf("kind = %v", qerr.KindOf(err))
	}
	if reg.Counter(obs.MAdmissionRejected).Value() != 1 {
		t.Fatal("rejection not counted")
	}
	release()
}

func TestAdmissionHonorsContext(t *testing.T) {
	a := newAdmission(1, 8, 0, obs.NewRegistry())
	release, err := a.acquire(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	defer release()

	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() {
		_, err := a.acquire(ctx)
		done <- err
	}()
	time.Sleep(5 * time.Millisecond)
	cancel()
	err = <-done
	if !errors.Is(err, qerr.ErrCanceled) {
		t.Fatalf("err = %v, want ErrCanceled", err)
	}
	if qerr.KindOf(err) != qerr.KindAdmission {
		t.Fatalf("kind = %v", qerr.KindOf(err))
	}
}

func TestAdmissionQueueTimeout(t *testing.T) {
	a := newAdmission(1, 8, 5*time.Millisecond, obs.NewRegistry())
	release, err := a.acquire(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	defer release()

	_, err = a.acquire(context.Background())
	if !errors.Is(err, qerr.ErrTimeout) {
		t.Fatalf("err = %v, want ErrTimeout", err)
	}
	if qerr.KindOf(err) != qerr.KindAdmission {
		t.Fatalf("kind = %v", qerr.KindOf(err))
	}
}

func TestAdmissionBoundHeldUnderChurn(t *testing.T) {
	// Hammer acquire/release with racing cancellations; the concurrency
	// bound must never be exceeded and no slot may leak.
	const bound = 4
	a := newAdmission(bound, 64, 0, obs.NewRegistry())
	var running, peak atomic.Int64
	var wg sync.WaitGroup
	for i := 0; i < 64; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			for j := 0; j < 20; j++ {
				ctx, cancel := context.WithCancel(context.Background())
				if i%4 == 0 {
					// Cancel aggressively to race grant against abandon.
					time.AfterFunc(time.Duration(j%3)*time.Millisecond, cancel)
				}
				r, err := a.acquire(ctx)
				if err == nil {
					n := running.Add(1)
					for {
						p := peak.Load()
						if n <= p || peak.CompareAndSwap(p, n) {
							break
						}
					}
					time.Sleep(time.Millisecond)
					running.Add(-1)
					r()
				}
				cancel()
			}
		}(i)
	}
	wg.Wait()
	if p := peak.Load(); p > bound {
		t.Fatalf("peak concurrency %d exceeds bound %d", p, bound)
	}
	// All slots must be free again.
	for i := 0; i < bound; i++ {
		r, err := a.acquire(context.Background())
		if err != nil {
			t.Fatalf("slot %d leaked: %v", i, err)
		}
		defer r()
	}
}
