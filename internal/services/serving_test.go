package services

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sort"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/plancache"
	"repro/internal/qerr"
	"repro/internal/sqlparse"
	"repro/internal/ws"
)

// qOrf selects one sequence row by key; literal variants share a normalized
// form, so repeats of any variant hit the plan cache.
func qOrf(i int) string {
	return fmt.Sprintf("select p.ORF from protein_sequences p where p.ORF = 'YAL%05dC'", i)
}

// statsDelta runs fn and returns how the plan-cache counters moved. The
// counters live in the process-global obs registry, so tests must compare
// deltas, not absolutes.
func statsDelta(g *GDQS, fn func()) plancache.Stats {
	before := g.PlanCacheStats()
	fn()
	after := g.PlanCacheStats()
	return plancache.Stats{
		Hits:      after.Hits - before.Hits,
		Misses:    after.Misses - before.Misses,
		Evictions: after.Evictions - before.Evictions,
		Size:      after.Size,
	}
}

// sortedRows renders a result set order-insensitively: exchanges interleave
// partitioned streams nondeterministically, so only the multiset of rows is
// comparable across runs.
func sortedRows(res *QueryResult) []string {
	out := make([]string, len(res.Rows))
	for i, r := range res.Rows {
		out[i] = r.Format()
	}
	sort.Strings(out)
	return out
}

func TestPlanCacheHitOnRepeatedShape(t *testing.T) {
	_, g := testGrid(t, false, 40, 60)

	var first, second *QueryResult
	d := statsDelta(g, func() {
		var err error
		if first, err = g.Execute(context.Background(), qOrf(3)); err != nil {
			t.Fatal(err)
		}
	})
	if d.Misses != 1 || d.Hits != 0 {
		t.Fatalf("cold execute: %+v, want 1 miss", d)
	}
	d = statsDelta(g, func() {
		var err error
		// Different literal, same shape: must reuse the cached template.
		if second, err = g.Execute(context.Background(), qOrf(7)); err != nil {
			t.Fatal(err)
		}
	})
	if d.Hits != 1 || d.Misses != 0 {
		t.Fatalf("warm execute: %+v, want 1 hit", d)
	}
	if len(first.Rows) != 1 || first.Rows[0][0].AsString() != "YAL00003C" {
		t.Fatalf("cold rows = %v", first.Rows)
	}
	if len(second.Rows) != 1 || second.Rows[0][0].AsString() != "YAL00007C" {
		t.Fatalf("warm rows = %v", second.Rows)
	}
}

func TestCachedResultsIdenticalToColdPlanned(t *testing.T) {
	cluster, g := testGrid(t, false, 60, 90)
	cfg := DefaultGDQSConfig()
	cfg.Adaptive = false
	cfg.QueryTimeout = 60 * time.Second
	cfg.PlanCacheSize = -1 // caching disabled: every execution plans cold
	cold, err := NewGDQS(cluster, "coord", cfg)
	if err != nil {
		t.Fatal(err)
	}

	for _, q := range []string{q1, q2, qOrf(11)} {
		if _, err := g.Execute(context.Background(), q); err != nil {
			t.Fatalf("warm-up %q: %v", q, err)
		}
		cached, err := g.Execute(context.Background(), q) // served from cache
		if err != nil {
			t.Fatalf("cached %q: %v", q, err)
		}
		direct, err := cold.Execute(context.Background(), q)
		if err != nil {
			t.Fatalf("cold %q: %v", q, err)
		}
		cr, dr := sortedRows(cached), sortedRows(direct)
		if strings.Join(cr, "\n") != strings.Join(dr, "\n") {
			t.Fatalf("%q: cached plan produced different rows\ncached: %v\ncold:   %v", q, cr, dr)
		}
	}
}

func TestPreparedStatement(t *testing.T) {
	cluster, g := testGrid(t, false, 40, 120)
	stmt, err := g.Prepare("select i.ORF2 from protein_interactions i where i.ORF1 = ?")
	if err != nil {
		t.Fatal(err)
	}
	if stmt.NumParams() != 1 {
		t.Fatalf("NumParams = %d, want 1", stmt.NumParams())
	}

	// Reference results straight off the stored table.
	ints, _ := cluster.storeOf("data1").Table("protein_interactions")
	want := make(map[string][]string)
	for _, tp := range ints.Tuples {
		k := tp[0].AsString()
		want[k] = append(want[k], tp[1].AsString())
	}

	checked := 0
	for orf, partners := range want {
		d := statsDelta(g, func() {
			res, err := stmt.Execute(context.Background(), orf)
			if err != nil {
				t.Fatalf("Execute(%q): %v", orf, err)
			}
			got := make([]string, len(res.Rows))
			for i, r := range res.Rows {
				got[i] = r[0].AsString()
			}
			sort.Strings(got)
			sort.Strings(partners)
			if strings.Join(got, ",") != strings.Join(partners, ",") {
				t.Fatalf("Execute(%q) = %v, want %v", orf, got, partners)
			}
		})
		if d.Misses != 0 {
			t.Fatalf("Execute(%q) re-planned: %+v (Prepare should have warmed the cache)", orf, d)
		}
		checked++
		if checked == 5 {
			break
		}
	}

	// Arity and type errors surface at bind time as plan errors.
	if _, err := stmt.Execute(context.Background()); qerr.KindOf(err) != qerr.KindPlan {
		t.Fatalf("no args: err = %v, want KindPlan", err)
	}
	if _, err := stmt.Execute(context.Background(), "a", "b"); qerr.KindOf(err) != qerr.KindPlan {
		t.Fatalf("extra args: err = %v, want KindPlan", err)
	}
	if _, err := stmt.Execute(context.Background(), 42); qerr.KindOf(err) != qerr.KindPlan {
		t.Fatalf("int arg for string param: err = %v, want KindPlan", err)
	}
}

func TestTopologyChangeInvalidatesPlanCache(t *testing.T) {
	cluster, g := testGrid(t, false, 40, 60)
	if _, err := g.Execute(context.Background(), qOrf(1)); err != nil {
		t.Fatal(err)
	}
	d := statsDelta(g, func() {
		if _, err := g.Execute(context.Background(), qOrf(2)); err != nil {
			t.Fatal(err)
		}
	})
	if d.Hits != 1 {
		t.Fatalf("pre-change execute: %+v, want 1 hit", d)
	}

	// A new compute resource bumps the topology epoch; the cached placement
	// no longer reflects the Grid and must be re-planned, not reused.
	v := cluster.Version()
	if err := cluster.AddComputeNode("ws2", 1.0,
		ws.NewRegistry(ws.Entropy{CostMs: 5}, ws.SequenceLength{})); err != nil {
		t.Fatal(err)
	}
	if cluster.Version() == v {
		t.Fatal("AddComputeNode did not advance the topology version")
	}
	d = statsDelta(g, func() {
		res, err := g.Execute(context.Background(), qOrf(2))
		if err != nil {
			t.Fatal(err)
		}
		if len(res.Rows) != 1 {
			t.Fatalf("rows = %d", len(res.Rows))
		}
	})
	if d.Misses != 1 || d.Hits != 0 {
		t.Fatalf("post-change execute: %+v, want 1 miss (stale entry invalidated)", d)
	}
}

func TestExecuteRepeatedAndConcurrent(t *testing.T) {
	// The acceptance bar: ≥64 concurrent clients against one coordinator,
	// exact results for every one, no goroutine leaks. MaxConcurrent stays at
	// the default (8), so most clients go through the admission queue.
	cluster, g := testGrid(t, false, 40, 60)

	// Warm up: fault in the plan templates and the lazily started machinery
	// so the goroutine baseline below is honest.
	if _, err := g.Execute(context.Background(), qOrf(0)); err != nil {
		t.Fatal(err)
	}
	if _, err := g.Execute(context.Background(), q2); err != nil {
		t.Fatal(err)
	}
	runtime.GC()
	base := runtime.NumGoroutine()

	// Reference result for q2.
	store := cluster.storeOf("data1")
	seqs, _ := store.Table("protein_sequences")
	ints, _ := store.Table("protein_interactions")
	valid := make(map[string]bool)
	for _, tp := range seqs.Tuples {
		valid[tp[0].AsString()] = true
	}
	q2Rows := 0
	for _, tp := range ints.Tuples {
		if valid[tp[0].AsString()] {
			q2Rows++
		}
	}

	const clients = 64
	var wg sync.WaitGroup
	errs := make(chan error, clients)
	for i := 0; i < clients; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			if i%2 == 0 {
				res, err := g.Execute(context.Background(), qOrf(i%40))
				if err != nil {
					errs <- fmt.Errorf("client %d: %w", i, err)
					return
				}
				if len(res.Rows) != 1 || res.Rows[0][0].AsString() != fmt.Sprintf("YAL%05dC", i%40) {
					errs <- fmt.Errorf("client %d: rows = %v", i, res.Rows)
				}
			} else {
				res, err := g.Execute(context.Background(), q2)
				if err != nil {
					errs <- fmt.Errorf("client %d: %w", i, err)
					return
				}
				if len(res.Rows) != q2Rows {
					errs <- fmt.Errorf("client %d: q2 rows = %d, want %d", i, len(res.Rows), q2Rows)
				}
			}
		}(i)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}

	// Every session's goroutines must wind down; allow the runtime a moment.
	deadline := time.Now().Add(5 * time.Second)
	for {
		runtime.GC()
		if n := runtime.NumGoroutine(); n <= base+2 {
			break
		}
		if time.Now().After(deadline) {
			buf := make([]byte, 1<<20)
			t.Fatalf("goroutines leaked: %d > baseline %d\n%s",
				runtime.NumGoroutine(), base, buf[:runtime.Stack(buf, true)])
		}
		time.Sleep(10 * time.Millisecond)
	}
}

func TestExecuteQueueTimeout(t *testing.T) {
	cluster, _ := testGrid(t, false, 40, 60)
	cfg := DefaultGDQSConfig()
	cfg.Adaptive = false
	cfg.QueryTimeout = 60 * time.Second
	cfg.MaxConcurrent = 1
	cfg.QueueTimeout = 10 * time.Millisecond
	g, err := NewGDQS(cluster, "coord", cfg)
	if err != nil {
		t.Fatal(err)
	}

	// Park a session on the single slot, then watch a second query time out
	// in the admission queue rather than run.
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	started := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		release, err := g.adm.acquire(context.Background())
		if err != nil {
			t.Error(err)
			close(started)
			return
		}
		close(started)
		<-ctx.Done()
		release()
	}()
	<-started

	_, err = g.Execute(context.Background(), qOrf(1))
	if !errors.Is(err, qerr.ErrTimeout) || qerr.KindOf(err) != qerr.KindAdmission {
		t.Fatalf("err = %v, want admission timeout", err)
	}
	cancel()
	wg.Wait()
}

// TestEqualNormalizedFormsShareOnePlan pins the cache-key contract the fuzz
// target checks probabilistically: queries that differ only in comparison
// literals normalize to one key, and planning that shared template twice
// yields structurally identical physical plans — so a cache hit can never
// change plan shape, only the literals bound into it.
func TestEqualNormalizedFormsShareOnePlan(t *testing.T) {
	_, g := testGrid(t, false, 40, 60)

	keyA, tmplA, slotsA, err := sqlparse.NormalizeSQL(qOrf(3))
	if err != nil {
		t.Fatal(err)
	}
	keyB, tmplB, slotsB, err := sqlparse.NormalizeSQL(qOrf(29))
	if err != nil {
		t.Fatal(err)
	}
	if keyA != keyB {
		t.Fatalf("literal variants normalized to different keys:\n  %q\n  %q", keyA, keyB)
	}

	cpA, err := g.planTemplate(tmplA, slotsA)
	if err != nil {
		t.Fatal(err)
	}
	cpB, err := g.planTemplate(tmplB, slotsB)
	if err != nil {
		t.Fatal(err)
	}
	if ea, eb := cpA.template.Explain(), cpB.template.Explain(); ea != eb {
		t.Fatalf("same key planned to different structures:\n--- A ---\n%s\n--- B ---\n%s", ea, eb)
	}
}
