package services

import (
	"context"
	"strings"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/engine"
	"repro/internal/obs"
	"repro/internal/relation"
	"repro/internal/simnet"
	"repro/internal/vtime"
	"repro/internal/ws"
)

// qJoinAgg orders by the group key, so the result is fully deterministic and
// row-for-row comparable across budgeted and unbudgeted runs.
const qJoinAgg = "select p.ORF, count(*) AS n from protein_sequences p, protein_interactions i where i.ORF1 = p.ORF group by p.ORF order by p.ORF"

// spillGrid is testGrid with a memory budget and optional posix spill dir.
func spillGrid(t *testing.T, seqs, ints int, budget int64, spillDir string) (*Cluster, *GDQS) {
	t.Helper()
	cluster := NewCluster(ClusterConfig{
		Scale: 10 * time.Microsecond,
		Costs: engine.Costs{ScanMs: 0.5, FilterMs: 0.01, ProjectMs: 0.01,
			JoinBuildMs: 0.05, JoinProbeMs: 0.3, StartupMs: 50},
		BufferTuples:    25,
		CheckpointEvery: 25,
		Buckets:         64,
	})
	if err := cluster.AddDataNode("data1", dataset.DemoSized(seqs, ints)); err != nil {
		t.Fatal(err)
	}
	for _, n := range []simnet.NodeID{"ws0", "ws1"} {
		if err := cluster.AddComputeNode(n, 1.0,
			ws.NewRegistry(ws.Entropy{CostMs: 5}, ws.SequenceLength{})); err != nil {
			t.Fatal(err)
		}
	}
	cfg := DefaultGDQSConfig()
	cfg.Adaptive = false
	cfg.QueryTimeout = 60 * time.Second
	cfg.MemoryBudgetBytes = budget
	cfg.SpillDir = spillDir
	g, err := NewGDQS(cluster, "coord", cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(cluster.Close)
	return cluster, g
}

// tableBytes sums the wire size of every tuple in the named demo table.
func tableBytes(t *testing.T, c *Cluster, name string) int64 {
	t.Helper()
	tbl, err := c.storeOf("data1").Table(name)
	if err != nil {
		t.Fatal(err)
	}
	var total int64
	for _, tp := range tbl.Tuples {
		total += int64(len(relation.EncodeTuple(tp)))
	}
	return total
}

// TestBudgetedQueryMatchesUnbudgeted is the PR's acceptance scenario: a
// join+aggregate query over tables at least 4x the memory budget completes on
// both spill backends with rows byte-identical to the unbudgeted run, spills
// for real (nonzero counters), and leaks no runs.
func TestBudgetedQueryMatchesUnbudgeted(t *testing.T) {
	const seqs, ints = 300, 900
	_, ref := spillGrid(t, seqs, ints, 0, "")
	want, err := ref.Execute(context.Background(), qJoinAgg)
	if err != nil {
		t.Fatal(err)
	}
	if len(want.Rows) == 0 {
		t.Fatal("reference run produced no rows")
	}

	for _, backend := range []string{"memory", "posix"} {
		t.Run(backend, func(t *testing.T) {
			dir := ""
			if backend == "posix" {
				dir = t.TempDir()
			}
			// Budget sized after the fact against the actual table bytes; the
			// grid is rebuilt below with the real value.
			probeCluster, _ := spillGrid(t, seqs, ints, 0, "")
			total := tableBytes(t, probeCluster, "protein_sequences") +
				tableBytes(t, probeCluster, "protein_interactions")
			budget := total / 8
			if total < 4*budget {
				t.Fatalf("tables (%d bytes) not >= 4x budget (%d)", total, budget)
			}

			cluster, g := spillGrid(t, seqs, ints, budget, dir)
			if got := tableBytes(t, cluster, "protein_sequences"); got == 0 {
				t.Fatal("demo store empty")
			}
			o := obs.Default()
			b0 := o.Counter(obs.MSpillBytes).Value()
			p0 := o.Counter(obs.MSpillPartitions).Value()
			got, err := g.Execute(context.Background(), qJoinAgg)
			if err != nil {
				t.Fatalf("budgeted execute: %v", err)
			}
			if len(got.Rows) != len(want.Rows) {
				t.Fatalf("rows = %d, want %d", len(got.Rows), len(want.Rows))
			}
			for i := range want.Rows {
				w := string(relation.EncodeTuple(want.Rows[i]))
				gr := string(relation.EncodeTuple(got.Rows[i]))
				if w != gr {
					t.Fatalf("row %d diverged under budget:\n%v\n%v",
						i, got.Rows[i].Format(), want.Rows[i].Format())
				}
			}
			if o.Counter(obs.MSpillBytes).Value() == b0 ||
				o.Counter(obs.MSpillPartitions).Value() == p0 {
				t.Fatalf("budget of %d bytes over %d-byte tables never spilled", budget, total)
			}
			runs, err := g.SpillBackend().List()
			if err != nil {
				t.Fatal(err)
			}
			if len(runs) != 0 {
				t.Fatalf("spill backend leaks runs after query: %v", runs)
			}
		})
	}
}

// TestBudgetedAdaptiveRetrospective re-runs the R1 acceptance scenario under
// an active memory budget: retrospective bucket eviction and replay must stay
// exact while the join is spilling.
func TestBudgetedAdaptiveRetrospective(t *testing.T) {
	_, ref := testGrid(t, false, 150, 500)
	want, err := ref.Execute(context.Background(), q2)
	if err != nil {
		t.Fatal(err)
	}

	cluster, _ := spillGrid(t, 150, 500, 2048, "")
	// Second coordinator on the same grid, adaptive with R1 under the budget.
	cfg := DefaultGDQSConfig()
	cfg.QueryTimeout = 60 * time.Second
	cfg.MemoryBudgetBytes = 2048
	cfg.Responder.Response = core.R1
	g2, err := NewGDQS(cluster, "coord", cfg)
	if err != nil {
		t.Fatal(err)
	}
	cluster.Node("ws1").SetPerturbation(vtime.Multiplier(10))
	o := obs.Default()
	b0 := o.Counter(obs.MSpillBytes).Value()
	got, err := g2.Execute(context.Background(), q2)
	if err != nil {
		t.Fatalf("adaptive budgeted execute: %v", err)
	}
	if strings.Join(sortedRows(got), "\n") != strings.Join(sortedRows(want), "\n") {
		t.Fatal("R1 under spill diverged from the unbudgeted static run")
	}
	if o.Counter(obs.MSpillBytes).Value() == b0 {
		t.Fatal("2KiB budget never spilled: scenario exercised nothing")
	}
	runs, err := g2.SpillBackend().List()
	if err != nil {
		t.Fatal(err)
	}
	if len(runs) != 0 {
		t.Fatalf("spill backend leaks runs after adaptive query: %v", runs)
	}
}

// TestParallelBudgetedQueryMatchesSerial runs the acceptance scenario with a
// width-4 morsel worker pool AND a memory budget together: parallel joins and
// aggregates spill through their per-worker budget stripes and must return
// rows byte-identical to the serial unbudgeted run, leaking neither runs nor
// inflight bytes.
func TestParallelBudgetedQueryMatchesSerial(t *testing.T) {
	const seqs, ints = 300, 900
	cluster, ref := spillGrid(t, seqs, ints, 0, "")
	want, err := ref.Execute(context.Background(), qJoinAgg)
	if err != nil {
		t.Fatal(err)
	}
	if len(want.Rows) == 0 {
		t.Fatal("reference run produced no rows")
	}

	total := tableBytes(t, cluster, "protein_sequences") +
		tableBytes(t, cluster, "protein_interactions")
	cfg := DefaultGDQSConfig()
	cfg.Adaptive = false
	cfg.QueryTimeout = 60 * time.Second
	cfg.MemoryBudgetBytes = total / 8
	cfg.Parallelism = 4
	g, err := NewGDQS(cluster, "coord", cfg)
	if err != nil {
		t.Fatal(err)
	}

	o := obs.Default()
	b0 := o.Counter(obs.MSpillBytes).Value()
	got, err := g.Execute(context.Background(), qJoinAgg)
	if err != nil {
		t.Fatalf("parallel budgeted execute: %v", err)
	}
	if len(got.Rows) != len(want.Rows) {
		t.Fatalf("rows = %d, want %d", len(got.Rows), len(want.Rows))
	}
	for i := range want.Rows {
		w := string(relation.EncodeTuple(want.Rows[i]))
		gr := string(relation.EncodeTuple(got.Rows[i]))
		if w != gr {
			t.Fatalf("row %d diverged under parallel budget:\n%v\n%v",
				i, got.Rows[i].Format(), want.Rows[i].Format())
		}
	}
	if o.Counter(obs.MSpillBytes).Value() == b0 {
		t.Fatalf("budget of %d bytes never spilled at width 4", cfg.MemoryBudgetBytes)
	}
	runs, err := g.SpillBackend().List()
	if err != nil {
		t.Fatal(err)
	}
	if len(runs) != 0 {
		t.Fatalf("spill backend leaks runs after parallel budgeted query: %v", runs)
	}
	if n := o.Gauge(obs.MMemInflight).Value(); n != 0 {
		t.Fatalf("mem_inflight_bytes = %d after parallel budgeted query, want 0", n)
	}
}

// TestParallelBudgetedAdaptiveRetrospective is the R1 acceptance scenario at
// width 4 under budget: retrospective evict/replay must stay exact while four
// workers spill concurrently through the shared partition state.
func TestParallelBudgetedAdaptiveRetrospective(t *testing.T) {
	_, ref := testGrid(t, false, 150, 500)
	want, err := ref.Execute(context.Background(), q2)
	if err != nil {
		t.Fatal(err)
	}

	cluster, _ := spillGrid(t, 150, 500, 2048, "")
	cfg := DefaultGDQSConfig()
	cfg.QueryTimeout = 60 * time.Second
	cfg.MemoryBudgetBytes = 2048
	cfg.Parallelism = 4
	cfg.Responder.Response = core.R1
	g2, err := NewGDQS(cluster, "coord", cfg)
	if err != nil {
		t.Fatal(err)
	}
	cluster.Node("ws1").SetPerturbation(vtime.Multiplier(10))
	o := obs.Default()
	b0 := o.Counter(obs.MSpillBytes).Value()
	got, err := g2.Execute(context.Background(), q2)
	if err != nil {
		t.Fatalf("parallel adaptive budgeted execute: %v", err)
	}
	if strings.Join(sortedRows(got), "\n") != strings.Join(sortedRows(want), "\n") {
		t.Fatal("R1 under parallel spill diverged from the unbudgeted static run")
	}
	if o.Counter(obs.MSpillBytes).Value() == b0 {
		t.Fatal("2KiB budget never spilled at width 4: scenario exercised nothing")
	}
	runs, err := g2.SpillBackend().List()
	if err != nil {
		t.Fatal(err)
	}
	if len(runs) != 0 {
		t.Fatalf("spill backend leaks runs after parallel adaptive query: %v", runs)
	}
	if n := o.Gauge(obs.MMemInflight).Value(); n != 0 {
		t.Fatalf("mem_inflight_bytes = %d after parallel adaptive query, want 0", n)
	}
}

// TestMemoryBudgetChangeInvalidatesPlanCache covers the plan-epoch fold: a
// runtime budget change must re-plan, not reuse a template compiled for a
// different memory envelope.
func TestMemoryBudgetChangeInvalidatesPlanCache(t *testing.T) {
	_, g := testGrid(t, false, 40, 60)
	if _, err := g.Execute(context.Background(), qOrf(1)); err != nil {
		t.Fatal(err)
	}
	d := statsDelta(g, func() {
		if _, err := g.Execute(context.Background(), qOrf(2)); err != nil {
			t.Fatal(err)
		}
	})
	if d.Hits != 1 {
		t.Fatalf("pre-change execute: %+v, want 1 hit", d)
	}

	g.SetMemoryBudget(1 << 20)
	d = statsDelta(g, func() {
		res, err := g.Execute(context.Background(), qOrf(2))
		if err != nil {
			t.Fatal(err)
		}
		if len(res.Rows) != 1 {
			t.Fatalf("rows = %d", len(res.Rows))
		}
	})
	if d.Misses != 1 || d.Hits != 0 {
		t.Fatalf("post-change execute: %+v, want 1 miss (epoch must fold the budget)", d)
	}
	if g.MemoryBudget() != 1<<20 {
		t.Fatalf("MemoryBudget = %d", g.MemoryBudget())
	}
}
