package services

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"sync"
	"sync/atomic"

	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/physical"
	"repro/internal/qerr"
	"repro/internal/relation"
	"repro/internal/simnet"
	"repro/internal/storage"
	"repro/internal/vtime"
)

// QuerySession owns every resource one query execution creates: the
// fragment runtimes (and through them the transport registrations and
// exchange endpoints), the AQP components with their bus subscriptions, and
// the result sink. The session's context is the single lifecycle mechanism:
// it carries the query deadline, the first failure cancels it (taking every
// sibling fragment down with it), and Close — idempotent, called exactly
// once per resource no matter how many paths race to it — releases the
// whole tree.
//
// Ownership tree:
//
//	QuerySession
//	├── ctx (deadline + first-error-wins cancellation)
//	├── fragment runtimes → transport registrations, producers, consumers
//	├── MEDs, Diagnoser, Responder → bus subscriptions, responder RPC endpoint
//	└── result sink → collector goroutine
type QuerySession struct {
	cluster *Cluster
	gdqs    *GDQS
	plan    *physical.Plan
	// elastic enables the recovery manager: failure detection, failover
	// onto survivors, and live admission of joining evaluators.
	elastic bool

	// ctx is canceled when the query is done — by deadline, by external
	// cancellation, or by the first fragment failure (recorded as the
	// cancellation cause).
	ctx    context.Context
	cancel context.CancelCauseFunc
	// stopTimeout releases the deadline timer backing ctx.
	stopTimeout context.CancelFunc

	diagnoser *core.Diagnoser
	responder *core.Responder
	sink      *rowSink

	// mem is this query's memory accountant and spill the backend its
	// operators write runs to; Close sweeps the query's run namespace as a
	// safety net against leaks on error paths.
	mem   *storage.Budget
	spill storage.Backend

	// rtMu guards the mutable execution membership: the runtime map and MED
	// list (live joins grow them), the active-driver counter (rtCond signals
	// it reaching zero), and the set of diagnosed-dead machines.
	rtMu     sync.Mutex
	rtCond   *sync.Cond
	active   int
	runtimes map[string]*engine.FragmentRuntime
	meds     []*core.MonitoringEventDetector
	medNodes map[simnet.NodeID]bool
	dead     map[simnet.NodeID]bool

	// deadCh and joinCh feed the recovery goroutine; failovers/joined count
	// completed membership changes for QueryStats.
	deadCh    chan simnet.NodeID
	joinCh    chan core.NodeEvent
	failovers atomic.Int64
	joined    atomic.Int64

	failMu   sync.Mutex
	firstErr error

	closeOnce sync.Once
}

// newQuerySession assembles the session for a scheduled plan: AQP
// components first (their subscriptions are scoped to the session context),
// then one fragment runtime per instance. On any assembly error the
// half-built session is fully closed before returning.
func newQuerySession(ctx context.Context, g *GDQS, plan *physical.Plan) (*QuerySession, error) {
	cluster := g.cluster
	runCtx, cancel := context.WithCancelCause(ctx)
	sctx, stopTimeout := context.WithTimeout(runCtx, g.cfg.QueryTimeout)
	s := &QuerySession{
		cluster:     cluster,
		gdqs:        g,
		plan:        plan,
		elastic:     g.cfg.Adaptive && g.cfg.Elastic,
		ctx:         sctx,
		cancel:      cancel,
		stopTimeout: stopTimeout,
		runtimes:    make(map[string]*engine.FragmentRuntime),
		medNodes:    make(map[simnet.NodeID]bool),
		dead:        make(map[simnet.NodeID]bool),
		deadCh:      make(chan simnet.NodeID, 64),
		joinCh:      make(chan core.NodeEvent, 64),
		sink:        &rowSink{ch: make(chan relation.Tuple, 4096)},
		mem:         storage.NewBudget(g.memBudget.Load()),
		spill:       g.spill,
	}
	s.rtCond = sync.NewCond(&s.rtMu)

	// Adaptivity components: one MED per evaluating site, one Diagnoser
	// and one Responder (paper §3.1), hosted at the coordinator.
	if g.cfg.Adaptive {
		for _, frag := range plan.Fragments {
			for _, node := range frag.Instances {
				if !s.medNodes[node] {
					s.medNodes[node] = true
					s.meds = append(s.meds, core.NewMED(sctx, cluster.bus, node, g.cfg.MED))
				}
			}
		}
		s.diagnoser = core.NewDiagnoser(sctx, cluster.bus, g.node, g.cfg.Diagnoser)
		s.responder = core.NewResponder(sctx, cluster.bus, cluster.tr, g.node, g.cfg.Responder)
		s.responder.SetClock(cluster.clock)
		for _, topo := range core.TopologyOf(plan, cluster.cfg.Buckets) {
			s.diagnoser.Register(topo)
			if err := s.responder.Register(topo); err != nil {
				s.Close()
				return nil, qerr.Schedule("register topology", err)
			}
		}
	}

	// Dynamically create an evaluation service per fragment instance.
	for _, frag := range plan.Fragments {
		for i, nodeID := range frag.Instances {
			node := cluster.net.Node(nodeID)
			if node == nil {
				s.Close()
				return nil, qerr.Schedule("deploy", fmt.Errorf("services: plan references unknown node %q", nodeID))
			}
			ectx := &engine.ExecContext{
				Clock:        cluster.clock,
				Node:         node,
				Meter:        vtime.NewMeter(cluster.clock),
				Store:        cluster.storeOf(nodeID),
				Services:     cluster.servicesOf(nodeID),
				Costs:        cluster.cfg.Costs,
				MonitorEvery: g.cfg.MonitorEvery,
				Buckets:      cluster.cfg.Buckets,
				Fragment:     frag.ID,
				Instance:     i,
				Parallelism:  resolveParallelism(g.cfg.Parallelism),
				Readahead:    g.cfg.ScanReadahead,
				Mem:          s.mem,
				Spill:        s.spill,
			}
			if g.cfg.Adaptive && g.cfg.MonitorEvery > 0 {
				ectx.Monitor = &core.MonitorAdapter{Bus: cluster.bus, Node: nodeID}
			}
			cfg := engine.RuntimeConfig{
				Plan:            plan,
				Fragment:        frag,
				Instance:        i,
				Ctx:             ectx,
				Tr:              cluster.tr,
				Node:            nodeID,
				BufferTuples:    cluster.cfg.BufferTuples,
				CheckpointEvery: cluster.cfg.CheckpointEvery,
			}
			if s.elastic {
				// Recovery replays from the producer-side logs, so every
				// exchange must run the checkpoint/ack protocol; peer-loss
				// discoveries during flushes feed the failure detector.
				cfg.FT = true
				cfg.OnPeerDown = s.reportDead
			}
			if frag.Output == nil {
				cfg.Sink = s.sink
			}
			rt, err := engine.NewFragmentRuntime(cfg)
			if err != nil {
				s.Close()
				return nil, qerr.Schedule("deploy "+frag.InstanceID(i), err)
			}
			s.runtimes[frag.InstanceID(i)] = rt
		}
	}

	if s.elastic {
		// Membership events are the authoritative failure/join source: the
		// cluster publishes them at the instant of KillNode/AddComputeNode,
		// ahead of any heartbeat or peer-loss discovery.
		cluster.bus.SubscribeContext(sctx, "session", g.node, core.TopicMembership, s.onMembership)
	}
	return s, nil
}

// fail records the first failure and cancels the session, taking every
// sibling fragment driver and AQP goroutine down. Context-derived errors
// pass through unclassified (a driver reporting its own interruption is not
// a new failure); anything else becomes a typed exec error and the
// cancellation cause.
func (s *QuerySession) fail(op string, err error) {
	if err == nil {
		return
	}
	if !errors.Is(err, context.Canceled) && !errors.Is(err, context.DeadlineExceeded) {
		err = qerr.Exec(op, err)
	}
	s.failMu.Lock()
	if s.firstErr == nil {
		s.firstErr = err
	}
	s.failMu.Unlock()
	s.cancel(err)
}

// run starts every fragment driver and collects result rows until the sink
// closes, then reports the query's outcome: rows on success, or the typed
// error for the first failure, the deadline, or an external cancellation.
func (s *QuerySession) run() ([]relation.Tuple, error) {
	s.rtMu.Lock()
	for id, rt := range s.runtimes {
		s.active++
		go s.drive(id, rt)
	}
	s.rtMu.Unlock()

	if s.elastic {
		go s.recoveryLoop()
		go s.heartbeatLoop()
	}

	var rows []relation.Tuple
	collectDone := make(chan struct{})
	go func() {
		defer close(collectDone)
		for t := range s.sink.ch {
			rows = append(rows, t)
		}
	}()

	// No timeout select here: the deadline lives on s.ctx, whose
	// cancellation interrupts every driver — including ones blocked in
	// consumer waits or paused exchanges — so waiting for them is bounded.
	s.waitDrivers()
	sinkErr := s.sink.Close()
	<-collectDone

	s.failMu.Lock()
	firstErr := s.firstErr
	s.failMu.Unlock()
	if firstErr != nil {
		// Classify through the context: a deadline outranks the derived
		// cancellation errors the interrupted drivers reported.
		if err := qerr.FromContext(s.ctx); err != nil {
			return nil, err
		}
		return nil, firstErr
	}
	if sinkErr != nil {
		return nil, qerr.Exec("result sink close", sinkErr)
	}
	return rows, nil
}

// Close tears the session down: it cancels the context first — releasing
// parked drivers, adaptation RPCs, and subscription watchers — then stops
// every owned resource. Idempotent and safe to call from multiple
// goroutines (success path and error paths may race to it).
func (s *QuerySession) Close() {
	s.closeOnce.Do(func() {
		s.cancel(nil)
		s.stopTimeout()
		// Snapshot under rtMu: a live join may still be committing a new
		// runtime (its commit path re-checks ctx under the same lock, so
		// nothing is added after this point).
		s.rtMu.Lock()
		rts := make([]*engine.FragmentRuntime, 0, len(s.runtimes))
		for _, rt := range s.runtimes {
			rts = append(rts, rt)
		}
		meds := append([]*core.MonitoringEventDetector(nil), s.meds...)
		s.rtMu.Unlock()
		for _, rt := range rts {
			rt.Stop()
		}
		for _, m := range meds {
			m.Stop()
		}
		if s.diagnoser != nil {
			s.diagnoser.Stop()
		}
		if s.responder != nil {
			s.responder.Stop()
		}
		_ = s.sink.Close()
		// Operators remove their own runs on Close; sweeping the query's tag
		// namespace afterwards catches anything an error path left behind.
		if s.spill != nil {
			if tag := queryTagPrefix(s.plan); tag != "" {
				_, _ = s.spill.RemoveMatching(tag)
			}
		}
	})
}

// queryTagPrefix returns the query-scoped namespace ("q17.") stamped on the
// plan's fragment IDs by Plan.Tag, or "" for untagged plans. Every spill run
// name starts with its fragment ID, so the prefix covers the whole query.
func queryTagPrefix(p *physical.Plan) string {
	if p == nil || len(p.Fragments) == 0 {
		return ""
	}
	id := p.Fragments[0].ID
	if i := strings.IndexByte(id, '.'); i >= 0 {
		return id[:i+1]
	}
	return ""
}

// stats gathers what the execution observed from every owned component.
func (s *QuerySession) stats(responseMs float64, rows int) QueryStats {
	st := QueryStats{
		ResponseMs:         responseMs,
		Rows:               rows,
		Plan:               s.plan,
		ConsumedByInstance: make(map[string]int64),
	}
	st.Failovers = s.failovers.Load()
	st.NodesJoined = s.joined.Load()
	s.rtMu.Lock()
	for id, rt := range s.runtimes {
		st.ConsumedByInstance[id] = rt.ConsumedTuples()
	}
	meds := append([]*core.MonitoringEventDetector(nil), s.meds...)
	s.rtMu.Unlock()
	for _, m := range meds {
		raw, notif := m.Stats()
		st.RawEvents += raw
		st.MEDNotifications += notif
	}
	if s.diagnoser != nil {
		_, proposals := s.diagnoser.Stats()
		st.Proposals = proposals
	}
	if s.responder != nil {
		rs := s.responder.Stats()
		st.Adaptations = rs.Adaptations
		st.SkippedLate = rs.SkippedLate
		st.TuplesMoved = rs.TuplesMoved
		st.StateReplays = rs.StateReplays
		st.ProgressFallbacks = rs.ProgressFallbacks
		st.Timeline = s.responder.Timeline()
	}
	return st
}
