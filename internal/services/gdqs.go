package services

import (
	"context"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/logical"
	"repro/internal/obs"
	"repro/internal/physical"
	"repro/internal/qerr"
	"repro/internal/relation"
	"repro/internal/simnet"
	"repro/internal/sqlparse"
)

// GDQSConfig configures a Grid Distributed Query Service instance.
type GDQSConfig struct {
	// Adaptive enables the AQP components; disabled, the evaluators are
	// plain static GQESs — the paper's "no ad" baseline.
	Adaptive bool
	// MonitorEvery is the M1 frequency in tuples (paper default 10; 0
	// disables monitoring even when Adaptive is set — the paper's
	// "frequency 0" configuration).
	MonitorEvery int
	// MED, Diagnoser and Responder tune the adaptivity components.
	MED       core.MEDConfig
	Diagnoser core.DiagnoserConfig
	Responder core.ResponderConfig
	// MaxParallelism caps the compute resources used per query.
	MaxParallelism int
	// Parallelism is the morsel worker-pool width of each fragment driver:
	// 0 (or 1) keeps the classic serial drivers, negative resolves to the
	// machine's GOMAXPROCS, and larger values run parallel-eligible
	// fragments on that many workers.
	Parallelism int
	// QueryTimeout bounds one query's real execution time; it becomes the
	// deadline of the session context every query runs under.
	QueryTimeout time.Duration
}

// DefaultGDQSConfig returns an adaptive configuration with the paper's
// default parameters.
func DefaultGDQSConfig() GDQSConfig {
	return GDQSConfig{
		Adaptive:     true,
		MonitorEvery: 10,
		MED:          core.DefaultMEDConfig(),
		Diagnoser:    core.DefaultDiagnoserConfig(),
		Responder:    core.DefaultResponderConfig(),
		QueryTimeout: 5 * time.Minute,
	}
}

// resolveParallelism maps the configured worker-pool width to a concrete
// count: non-positive means serial except that a negative value asks for the
// machine's GOMAXPROCS.
func resolveParallelism(p int) int {
	if p < 0 {
		return runtime.GOMAXPROCS(0)
	}
	if p == 0 {
		return 1
	}
	return p
}

// queryCounter hands out process-wide query tags, so plans of concurrently
// executing queries (even through different coordinators sharing one
// cluster) never collide on the transport namespace.
var queryCounter atomic.Int64

// GDQS is the coordinator service: it parses, optimises and schedules
// queries, dynamically creates a GQES (or AGQES) on each machine the
// scheduler selected, collects the results, and — when adaptive — hosts the
// Diagnoser and Responder while each evaluating site runs its own
// MonitoringEventDetector.
type GDQS struct {
	cluster *Cluster
	node    simnet.NodeID
	cfg     GDQSConfig

	mu sync.Mutex // serialises Execute per coordinator
}

// NewGDQS creates the coordinator on the given node.
func NewGDQS(cluster *Cluster, node simnet.NodeID, cfg GDQSConfig) (*GDQS, error) {
	if err := cluster.ensureNode(node); err != nil {
		return nil, err
	}
	if cfg.QueryTimeout <= 0 {
		cfg.QueryTimeout = 5 * time.Minute
	}
	return &GDQS{cluster: cluster, node: node, cfg: cfg}, nil
}

// QueryStats aggregates what one execution observed; the experiment harness
// reads everything it reports from here.
type QueryStats struct {
	// ResponseMs is the query response time in paper milliseconds.
	ResponseMs float64
	Rows       int
	// Plan is the scheduled physical plan (for explain output).
	Plan *physical.Plan
	// ConsumedByInstance maps fragment instance IDs to the tuples each
	// consumed — the paper reports the slow/fast machine tuple ratio.
	ConsumedByInstance map[string]int64
	// Raw monitoring and adaptivity traffic counters (paper §3.2,
	// Overheads).
	RawEvents        int64
	MEDNotifications int64
	Proposals        int64
	Adaptations      int64
	SkippedLate      int64
	TuplesMoved      int64
	StateReplays     int64
	// ProgressFallbacks counts progress checks that used routing progress
	// because no cardinality estimate was available.
	ProgressFallbacks int64
	// Timeline records every Responder decision with timestamps.
	Timeline []core.AdaptationEvent
}

// QueryResult is a completed query.
type QueryResult struct {
	Columns []relation.Column
	Rows    []relation.Tuple
	Stats   QueryStats
}

// Execute runs one SQL query to completion under ctx. Cancelling ctx stops
// every fragment driver and adaptivity goroutine the query started and
// returns qerr.ErrCanceled; the configured QueryTimeout yields
// qerr.ErrTimeout the same way. A nil ctx runs under only the timeout.
//
// Errors carry a qerr.Kind: compilation failures are KindPlan, scheduling
// and deployment failures KindSchedule, and runtime failures KindExec or
// KindTransport — use errors.As with *qerr.Error (or errors.Is with the
// sentinels) to classify.
func (g *GDQS) Execute(ctx context.Context, query string) (*QueryResult, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	g.mu.Lock()
	defer g.mu.Unlock()

	stmt, err := sqlparse.Parse(query)
	if err != nil {
		return nil, qerr.Plan("parse", err)
	}
	lplan, err := logical.Plan(stmt, g.cluster.catalog)
	if err != nil {
		return nil, qerr.Plan("plan", err)
	}
	pplan, err := physical.Schedule(lplan, g.cluster.registry, physical.Options{
		Coordinator:    g.node,
		MaxParallelism: g.cfg.MaxParallelism,
	})
	if err != nil {
		return nil, qerr.Schedule("schedule", err)
	}
	pplan.Tag(fmt.Sprintf("q%d", queryCounter.Add(1)))
	if err := pplan.Validate(); err != nil {
		return nil, qerr.Schedule("validate", err)
	}
	return g.run(ctx, pplan)
}

// run deploys and executes a scheduled plan inside a QuerySession.
func (g *GDQS) run(ctx context.Context, plan *physical.Plan) (*QueryResult, error) {
	o := obs.Default()
	open := o.Gauge(obs.MSessionsOpen)
	open.Add(1)
	defer open.Add(-1)
	start := time.Now()
	s, err := newQuerySession(ctx, g, plan)
	if err != nil {
		o.Counter(obs.Label(obs.MQueries, "outcome", "error")).Inc()
		return nil, err
	}
	defer s.Close()

	rows, err := s.run()
	if err != nil {
		o.Counter(obs.Label(obs.MQueries, "outcome", "error")).Inc()
		return nil, err
	}
	o.Counter(obs.Label(obs.MQueries, "outcome", "ok")).Inc()
	return &QueryResult{
		Columns: plan.Top().Root.OutSchema().Columns(),
		Rows:    rows,
		Stats:   s.stats(g.cluster.clock.MsOf(time.Since(start)), len(rows)),
	}, nil
}

// Explain compiles and schedules a query without executing it.
func (g *GDQS) Explain(query string) (string, error) {
	stmt, err := sqlparse.Parse(query)
	if err != nil {
		return "", err
	}
	lplan, err := logical.Plan(stmt, g.cluster.catalog)
	if err != nil {
		return "", err
	}
	pplan, err := physical.Schedule(lplan, g.cluster.registry, physical.Options{
		Coordinator:    g.node,
		MaxParallelism: g.cfg.MaxParallelism,
	})
	if err != nil {
		return "", err
	}
	return logical.Explain(lplan) + "\n" + pplan.Explain(), nil
}
