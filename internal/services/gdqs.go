package services

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/logical"
	"repro/internal/physical"
	"repro/internal/relation"
	"repro/internal/simnet"
	"repro/internal/sqlparse"
	"repro/internal/vtime"
)

// GDQSConfig configures a Grid Distributed Query Service instance.
type GDQSConfig struct {
	// Adaptive enables the AQP components; disabled, the evaluators are
	// plain static GQESs — the paper's "no ad" baseline.
	Adaptive bool
	// MonitorEvery is the M1 frequency in tuples (paper default 10; 0
	// disables monitoring even when Adaptive is set — the paper's
	// "frequency 0" configuration).
	MonitorEvery int
	// MED, Diagnoser and Responder tune the adaptivity components.
	MED       core.MEDConfig
	Diagnoser core.DiagnoserConfig
	Responder core.ResponderConfig
	// MaxParallelism caps the compute resources used per query.
	MaxParallelism int
	// QueryTimeout bounds one query's real execution time.
	QueryTimeout time.Duration
}

// DefaultGDQSConfig returns an adaptive configuration with the paper's
// default parameters.
func DefaultGDQSConfig() GDQSConfig {
	return GDQSConfig{
		Adaptive:     true,
		MonitorEvery: 10,
		MED:          core.DefaultMEDConfig(),
		Diagnoser:    core.DefaultDiagnoserConfig(),
		Responder:    core.DefaultResponderConfig(),
		QueryTimeout: 5 * time.Minute,
	}
}

// queryCounter hands out process-wide query tags, so plans of concurrently
// executing queries (even through different coordinators sharing one
// cluster) never collide on the transport namespace.
var queryCounter atomic.Int64

// GDQS is the coordinator service: it parses, optimises and schedules
// queries, dynamically creates a GQES (or AGQES) on each machine the
// scheduler selected, collects the results, and — when adaptive — hosts the
// Diagnoser and Responder while each evaluating site runs its own
// MonitoringEventDetector.
type GDQS struct {
	cluster *Cluster
	node    simnet.NodeID
	cfg     GDQSConfig

	mu sync.Mutex // serialises Execute per coordinator
}

// NewGDQS creates the coordinator on the given node.
func NewGDQS(cluster *Cluster, node simnet.NodeID, cfg GDQSConfig) (*GDQS, error) {
	if err := cluster.ensureNode(node); err != nil {
		return nil, err
	}
	if cfg.QueryTimeout <= 0 {
		cfg.QueryTimeout = 5 * time.Minute
	}
	return &GDQS{cluster: cluster, node: node, cfg: cfg}, nil
}

// QueryStats aggregates what one execution observed; the experiment harness
// reads everything it reports from here.
type QueryStats struct {
	// ResponseMs is the query response time in paper milliseconds.
	ResponseMs float64
	Rows       int
	// Plan is the scheduled physical plan (for explain output).
	Plan *physical.Plan
	// ConsumedByInstance maps fragment instance IDs to the tuples each
	// consumed — the paper reports the slow/fast machine tuple ratio.
	ConsumedByInstance map[string]int64
	// Raw monitoring and adaptivity traffic counters (paper §3.2,
	// Overheads).
	RawEvents        int64
	MEDNotifications int64
	Proposals        int64
	Adaptations      int64
	SkippedLate      int64
	TuplesMoved      int64
	StateReplays     int64
	// Timeline records every Responder decision with timestamps.
	Timeline []core.AdaptationEvent
}

// QueryResult is a completed query.
type QueryResult struct {
	Columns []relation.Column
	Rows    []relation.Tuple
	Stats   QueryStats
}

// Execute runs one SQL query to completion.
func (g *GDQS) Execute(query string) (*QueryResult, error) {
	g.mu.Lock()
	defer g.mu.Unlock()

	stmt, err := sqlparse.Parse(query)
	if err != nil {
		return nil, err
	}
	lplan, err := logical.Plan(stmt, g.cluster.catalog)
	if err != nil {
		return nil, err
	}
	pplan, err := physical.Schedule(lplan, g.cluster.registry, physical.Options{
		Coordinator:    g.node,
		MaxParallelism: g.cfg.MaxParallelism,
	})
	if err != nil {
		return nil, err
	}
	pplan.Tag(fmt.Sprintf("q%d", queryCounter.Add(1)))
	if err := pplan.Validate(); err != nil {
		return nil, err
	}
	return g.run(pplan)
}

// run deploys and executes a scheduled plan.
func (g *GDQS) run(plan *physical.Plan) (*QueryResult, error) {
	cluster := g.cluster
	start := time.Now()

	// Adaptivity components: one MED per evaluating site, one Diagnoser
	// and one Responder (paper §3.1), hosted at the coordinator.
	var (
		meds      []*core.MonitoringEventDetector
		diagnoser *core.Diagnoser
		responder *core.Responder
	)
	if g.cfg.Adaptive {
		seen := map[simnet.NodeID]bool{}
		for _, frag := range plan.Fragments {
			for _, node := range frag.Instances {
				if !seen[node] {
					seen[node] = true
					meds = append(meds, core.NewMED(cluster.bus, node, g.cfg.MED))
				}
			}
		}
		diagnoser = core.NewDiagnoser(cluster.bus, g.node, g.cfg.Diagnoser)
		responder = core.NewResponder(cluster.bus, cluster.tr, g.node, g.cfg.Responder)
		responder.SetClock(cluster.clock)
		for _, topo := range core.TopologyOf(plan, cluster.cfg.Buckets) {
			diagnoser.Register(topo)
			if err := responder.Register(topo); err != nil {
				return nil, err
			}
		}
	}
	defer func() {
		for _, m := range meds {
			m.Stop()
		}
		if diagnoser != nil {
			diagnoser.Stop()
		}
		if responder != nil {
			responder.Stop()
		}
	}()

	// Dynamically create an evaluation service per fragment instance.
	sink := &rowSink{ch: make(chan relation.Tuple, 4096)}
	runtimes := make(map[string]*engine.FragmentRuntime)
	defer func() {
		for _, rt := range runtimes {
			rt.Stop()
		}
	}()
	for _, frag := range plan.Fragments {
		for i, nodeID := range frag.Instances {
			node := cluster.net.Node(nodeID)
			if node == nil {
				return nil, fmt.Errorf("services: plan references unknown node %q", nodeID)
			}
			ctx := &engine.ExecContext{
				Clock:        cluster.clock,
				Node:         node,
				Meter:        vtime.NewMeter(cluster.clock),
				Store:        cluster.storeOf(nodeID),
				Services:     cluster.servicesOf(nodeID),
				Costs:        cluster.cfg.Costs,
				MonitorEvery: g.cfg.MonitorEvery,
				Buckets:      cluster.cfg.Buckets,
				Fragment:     frag.ID,
				Instance:     i,
			}
			if g.cfg.Adaptive && g.cfg.MonitorEvery > 0 {
				ctx.Monitor = &core.MonitorAdapter{Bus: cluster.bus, Node: nodeID}
			}
			cfg := engine.RuntimeConfig{
				Plan:            plan,
				Fragment:        frag,
				Instance:        i,
				Ctx:             ctx,
				Tr:              cluster.tr,
				Node:            nodeID,
				BufferTuples:    cluster.cfg.BufferTuples,
				CheckpointEvery: cluster.cfg.CheckpointEvery,
			}
			if frag.Output == nil {
				cfg.Sink = sink
			}
			rt, err := engine.NewFragmentRuntime(cfg)
			if err != nil {
				return nil, err
			}
			runtimes[frag.InstanceID(i)] = rt
		}
	}

	// Start all drivers; collect rows until the sink closes.
	var wg sync.WaitGroup
	errCh := make(chan error, len(runtimes))
	for _, rt := range runtimes {
		rt := rt
		wg.Add(1)
		go func() {
			defer wg.Done()
			if err := rt.Run(); err != nil {
				errCh <- err
			}
		}()
	}

	var rows []relation.Tuple
	collectDone := make(chan struct{})
	go func() {
		defer close(collectDone)
		for t := range sink.ch {
			rows = append(rows, t)
		}
	}()

	driversDone := make(chan struct{})
	go func() {
		wg.Wait()
		close(driversDone)
	}()

	var execErr error
	select {
	case <-driversDone:
	case err := <-errCh:
		execErr = err
		for _, rt := range runtimes {
			rt.Stop() // unblocks consumers so remaining drivers exit
		}
		<-driversDone
	case <-time.After(g.cfg.QueryTimeout):
		execErr = fmt.Errorf("services: query exceeded timeout %v", g.cfg.QueryTimeout)
		for _, rt := range runtimes {
			rt.Stop()
		}
		<-driversDone
	}
	_ = sink.Close() // idempotent: drains the collector on error paths
	<-collectDone
	if execErr == nil {
		select {
		case err := <-errCh:
			execErr = err
		default:
		}
	}
	if execErr != nil {
		return nil, execErr
	}

	stats := QueryStats{
		ResponseMs:         cluster.clock.MsOf(time.Since(start)),
		Rows:               len(rows),
		Plan:               plan,
		ConsumedByInstance: make(map[string]int64),
	}
	for id, rt := range runtimes {
		stats.ConsumedByInstance[id] = rt.ConsumedTuples()
	}
	for _, m := range meds {
		raw, notif := m.Stats()
		stats.RawEvents += raw
		stats.MEDNotifications += notif
	}
	if diagnoser != nil {
		_, proposals := diagnoser.Stats()
		stats.Proposals = proposals
	}
	if responder != nil {
		rs := responder.Stats()
		stats.Adaptations = rs.Adaptations
		stats.SkippedLate = rs.SkippedLate
		stats.TuplesMoved = rs.TuplesMoved
		stats.StateReplays = rs.StateReplays
		stats.Timeline = responder.Timeline()
	}
	return &QueryResult{
		Columns: plan.Top().Root.OutSchema().Columns(),
		Rows:    rows,
		Stats:   stats,
	}, nil
}

// Explain compiles and schedules a query without executing it.
func (g *GDQS) Explain(query string) (string, error) {
	stmt, err := sqlparse.Parse(query)
	if err != nil {
		return "", err
	}
	lplan, err := logical.Plan(stmt, g.cluster.catalog)
	if err != nil {
		return "", err
	}
	pplan, err := physical.Schedule(lplan, g.cluster.registry, physical.Options{
		Coordinator:    g.node,
		MaxParallelism: g.cfg.MaxParallelism,
	})
	if err != nil {
		return "", err
	}
	return logical.Explain(lplan) + "\n" + pplan.Explain(), nil
}
