package services

import (
	"context"
	"encoding/binary"
	"fmt"
	"hash/fnv"
	"os"
	"runtime"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/logical"
	"repro/internal/obs"
	"repro/internal/physical"
	"repro/internal/plancache"
	"repro/internal/qerr"
	"repro/internal/relation"
	"repro/internal/simnet"
	"repro/internal/sqlparse"
	"repro/internal/storage"
)

// GDQSConfig configures a Grid Distributed Query Service instance.
type GDQSConfig struct {
	// Adaptive enables the AQP components; disabled, the evaluators are
	// plain static GQESs — the paper's "no ad" baseline.
	Adaptive bool
	// MonitorEvery is the M1 frequency in tuples (paper default 10; 0
	// disables monitoring even when Adaptive is set — the paper's
	// "frequency 0" configuration).
	MonitorEvery int
	// MED, Diagnoser and Responder tune the adaptivity components.
	MED       core.MEDConfig
	Diagnoser core.DiagnoserConfig
	Responder core.ResponderConfig
	// MaxParallelism caps the compute resources used per query.
	MaxParallelism int
	// Parallelism is the morsel worker-pool width of each fragment driver:
	// 0 (or 1) keeps the classic serial drivers, negative resolves to the
	// machine's GOMAXPROCS, and larger values run parallel-eligible
	// fragments on that many workers. 0 defers to the GRIDDQP_FORCE_PARALLEL
	// environment variable when set — the CI knob that runs the whole
	// services + chaos suite morsel-parallel (and, combined with
	// GRIDDQP_FORCE_MEM_BUDGET, parallel under a spill budget).
	Parallelism int
	// QueryTimeout bounds one query's real execution time; it becomes the
	// deadline of the session context every query runs under.
	QueryTimeout time.Duration
	// PlanCacheSize bounds the normalized-SQL plan cache: 0 means
	// plancache.DefaultCapacity, negative disables caching (every query is
	// planned from scratch).
	PlanCacheSize int
	// MaxConcurrent bounds the QuerySessions running at once
	// (DefaultMaxConcurrent when 0); arrivals beyond it queue FIFO.
	MaxConcurrent int
	// MaxQueue bounds the admission queue (DefaultMaxQueue when 0); arrivals
	// beyond it are rejected with qerr.ErrRejected.
	MaxQueue int
	// QueueTimeout bounds how long one query may wait for admission (real
	// time); 0 means the wait is bounded only by the query's context.
	QueueTimeout time.Duration
	// PlanMs models the compile-and-schedule cost in paper milliseconds —
	// the registry and factory consultations OGSA-DQP performs to prepare a
	// query, which its measurements put at seconds per statement. It is
	// charged (slept at the cluster's time scale) on every cold planning and
	// skipped when the plan cache serves the template, so it is what the
	// serving layer's template reuse saves. 0 disables the charge.
	PlanMs float64
	// Elastic enables crash recovery and live membership: the engine runs
	// its exactly-once commit protocol, sessions watch for evaluator death
	// (peer-loss, heartbeats, membership events) and fail work over to
	// survivors, and evaluators registered mid-query are admitted into
	// running stateless fragments. Requires Adaptive (recovery deploys
	// through the Responder) and forces serial fragment drivers.
	Elastic bool
	// HeartbeatEvery is the real-time interval between liveness probes of
	// the evaluating machines (DefaultHeartbeatEvery when 0; elastic only).
	HeartbeatEvery time.Duration
	// HeartbeatMisses is how many consecutive probe failures diagnose a
	// node as dead (DefaultHeartbeatMisses when 0). Unreachable-node errors
	// are definitive and bypass the count.
	HeartbeatMisses int
	// MemoryBudgetBytes caps each query's stateful-operator memory: on
	// breach, hash joins and aggregates grace-hash-spill partitions to the
	// storage backend and sorts switch to external merge runs. 0 means
	// unbudgeted, unless the GRIDDQP_FORCE_MEM_BUDGET environment variable
	// (bytes) overrides it — the low-memory CI lane's knob. The budget can
	// be changed at runtime with SetMemoryBudget.
	MemoryBudgetBytes int64
	// SpillDir roots spill runs in a posix-backed directory; empty keeps
	// spills in the in-memory storage backend (fine for tests and paper-scale
	// runs, no use for actually relieving memory pressure).
	SpillDir string
	// ScanReadahead is the stored-scan prefetch depth in blocks: how many
	// blocks a serial stored scan may hold in flight between its readahead
	// goroutine and the decoder, each reserved against the query's memory
	// budget. 0 selects the engine default (2 — double buffering); negative
	// disables the readahead goroutine and reads synchronously.
	ScanReadahead int
}

// Heartbeat defaults: probes are cheap one-message RPCs, so a short real-time
// interval keeps detection latency well under typical query durations.
const (
	DefaultHeartbeatEvery  = 25 * time.Millisecond
	DefaultHeartbeatMisses = 2
)

// DefaultGDQSConfig returns an adaptive configuration with the paper's
// default parameters.
func DefaultGDQSConfig() GDQSConfig {
	return GDQSConfig{
		Adaptive:     true,
		MonitorEvery: 10,
		MED:          core.DefaultMEDConfig(),
		Diagnoser:    core.DefaultDiagnoserConfig(),
		Responder:    core.DefaultResponderConfig(),
		QueryTimeout: 5 * time.Minute,
	}
}

// resolveParallelism maps the configured worker-pool width to a concrete
// count: non-positive means serial except that a negative value asks for the
// machine's GOMAXPROCS.
func resolveParallelism(p int) int {
	if p < 0 {
		return runtime.GOMAXPROCS(0)
	}
	if p == 0 {
		return 1
	}
	return p
}

// queryCounter hands out process-wide query tags, so plans of concurrently
// executing queries (even through different coordinators sharing one
// cluster) never collide on the transport namespace.
var queryCounter atomic.Int64

// GDQS is the coordinator service: it parses, optimises and schedules
// queries, dynamically creates a GQES (or AGQES) on each machine the
// scheduler selected, collects the results, and — when adaptive — hosts the
// Diagnoser and Responder while each evaluating site runs its own
// MonitoringEventDetector.
type GDQS struct {
	cluster *Cluster
	node    simnet.NodeID
	cfg     GDQSConfig

	// cache maps normalized SQL to plan templates (nil when disabled); adm
	// bounds concurrent sessions. Execute is safe for concurrent use.
	cache *plancache.Cache[*cachedPlan]
	adm   *admission
	// spill is the storage backend every session spills to; memBudget is the
	// per-query byte limit (atomic so SetMemoryBudget can retune a live
	// service — running queries keep the budget they started with).
	spill     storage.Backend
	memBudget atomic.Int64
	// planMu serializes the modeled compile cost: the GDQS is one
	// coordinator service compiling one statement at a time, so concurrent
	// cold plans queue on it (cache hits never touch it).
	planMu sync.Mutex
}

// NewGDQS creates the coordinator on the given node.
func NewGDQS(cluster *Cluster, node simnet.NodeID, cfg GDQSConfig) (*GDQS, error) {
	if err := cluster.ensureNode(node); err != nil {
		return nil, err
	}
	if cfg.QueryTimeout <= 0 {
		cfg.QueryTimeout = 5 * time.Minute
	}
	if cfg.MemoryBudgetBytes == 0 {
		if v := os.Getenv("GRIDDQP_FORCE_MEM_BUDGET"); v != "" {
			n, err := strconv.ParseInt(v, 10, 64)
			if err != nil {
				return nil, fmt.Errorf("services: GRIDDQP_FORCE_MEM_BUDGET=%q: %w", v, err)
			}
			cfg.MemoryBudgetBytes = n
		}
	}
	if cfg.Parallelism == 0 {
		if v := os.Getenv("GRIDDQP_FORCE_PARALLEL"); v != "" {
			n, err := strconv.Atoi(v)
			if err != nil {
				return nil, fmt.Errorf("services: GRIDDQP_FORCE_PARALLEL=%q: %w", v, err)
			}
			cfg.Parallelism = n
		}
	}
	g := &GDQS{cluster: cluster, node: node, cfg: cfg}
	g.memBudget.Store(cfg.MemoryBudgetBytes)
	if cfg.SpillDir != "" {
		backend, err := storage.NewPosix(cfg.SpillDir)
		if err != nil {
			return nil, err
		}
		g.spill = backend
	} else {
		g.spill = storage.NewMemory()
	}
	if cfg.PlanCacheSize >= 0 {
		g.cache = plancache.New[*cachedPlan](cfg.PlanCacheSize, obs.Default().Registry())
	}
	g.adm = newAdmission(cfg.MaxConcurrent, cfg.MaxQueue, cfg.QueueTimeout, obs.Default().Registry())
	return g, nil
}

// SetMemoryBudget retunes the per-query memory budget (bytes; 0 disables
// budgeting). Sessions admitted after the call run under the new budget;
// running queries keep the one they started with. The budget participates in
// the plan-template epoch, so cached templates re-plan instead of hitting.
func (g *GDQS) SetMemoryBudget(n int64) { g.memBudget.Store(n) }

// MemoryBudget returns the current per-query memory budget in bytes.
func (g *GDQS) MemoryBudget() int64 { return g.memBudget.Load() }

// SpillBackend returns the storage backend sessions spill to.
func (g *GDQS) SpillBackend() storage.Backend { return g.spill }

// planEpoch is the plan-cache invalidation token: the cluster topology
// version folded (FNV-64a) with the execution environment a template was
// planned under — the memory budget and the spill backend's identity. Any
// change to either makes every cached entry miss.
func (g *GDQS) planEpoch() uint64 {
	h := fnv.New64a()
	var b [8]byte
	binary.LittleEndian.PutUint64(b[:], uint64(g.memBudget.Load()))
	_, _ = h.Write(b[:])
	_, _ = h.Write([]byte(g.spill.Name()))
	return h.Sum64() ^ g.cluster.Version()
}

// cachedPlan is one plan-cache entry: the untagged, unbound physical plan
// template plus its parameter slots (untyped slots upgraded with the
// planner's inference, so argument type errors surface at bind time).
type cachedPlan struct {
	template *physical.Plan
	slots    []sqlparse.Slot
}

// PlanCacheStats snapshots the coordinator's plan-cache counters (zero when
// caching is disabled).
func (g *GDQS) PlanCacheStats() plancache.Stats {
	if g.cache == nil {
		return plancache.Stats{}
	}
	return g.cache.Stats()
}

// QueryStats aggregates what one execution observed; the experiment harness
// reads everything it reports from here.
type QueryStats struct {
	// ResponseMs is the query response time in paper milliseconds.
	ResponseMs float64
	Rows       int
	// Plan is the scheduled physical plan (for explain output).
	Plan *physical.Plan
	// ConsumedByInstance maps fragment instance IDs to the tuples each
	// consumed — the paper reports the slow/fast machine tuple ratio.
	ConsumedByInstance map[string]int64
	// Raw monitoring and adaptivity traffic counters (paper §3.2,
	// Overheads).
	RawEvents        int64
	MEDNotifications int64
	Proposals        int64
	Adaptations      int64
	SkippedLate      int64
	TuplesMoved      int64
	StateReplays     int64
	// ProgressFallbacks counts progress checks that used routing progress
	// because no cardinality estimate was available.
	ProgressFallbacks int64
	// Failovers counts evaluator deaths this query recovered from, and
	// NodesJoined counts evaluators admitted into it mid-flight.
	Failovers   int64
	NodesJoined int64
	// Timeline records every Responder decision with timestamps.
	Timeline []core.AdaptationEvent
}

// QueryResult is a completed query.
type QueryResult struct {
	Columns []relation.Column
	Rows    []relation.Tuple
	Stats   QueryStats
}

// Execute runs one SQL query to completion under ctx. Execute is safe for
// concurrent use: the admission controller bounds how many sessions run at
// once, queueing the rest in FIFO order, and each repeated query reuses the
// cached plan template of its normalized form. Cancelling ctx stops every
// fragment driver and adaptivity goroutine the query started and returns
// qerr.ErrCanceled; the configured QueryTimeout yields qerr.ErrTimeout the
// same way. A nil ctx runs under only the timeout.
//
// Errors carry a qerr.Kind: compilation failures are KindPlan, scheduling
// and deployment failures KindSchedule, admission failures KindAdmission
// (errors.Is(err, qerr.ErrRejected) for a full queue), and runtime failures
// KindExec or KindTransport — use errors.As with *qerr.Error (or errors.Is
// with the sentinels) to classify.
func (g *GDQS) Execute(ctx context.Context, query string) (*QueryResult, error) {
	return g.execute(ctx, query, nil)
}

func (g *GDQS) execute(ctx context.Context, query string, userArgs []sqlparse.Expr) (*QueryResult, error) {
	key, template, slots, err := sqlparse.NormalizeSQL(query)
	if err != nil {
		return nil, qerr.Plan("parse", err)
	}
	return g.executeTemplate(ctx, key, template, slots, userArgs)
}

// executeTemplate is the serving pipeline every query goes through after
// normalization: resolve the plan template (cache or planner), clone + bind
// + tag it, pass admission, run the session.
func (g *GDQS) executeTemplate(ctx context.Context, key string, template *sqlparse.SelectStmt,
	slots []sqlparse.Slot, userArgs []sqlparse.Expr) (*QueryResult, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	pplan, err := g.planFor(key, template, slots, userArgs)
	if err != nil {
		return nil, err
	}
	release, err := g.adm.acquire(ctx)
	if err != nil {
		return nil, err
	}
	defer release()
	return g.run(ctx, pplan)
}

// planFor resolves a normalized statement into an execution-ready (bound and
// tagged) physical plan, consulting the plan cache first.
func (g *GDQS) planFor(key string, template *sqlparse.SelectStmt,
	slots []sqlparse.Slot, userArgs []sqlparse.Expr) (*physical.Plan, error) {
	cp, terr := g.templateFor(key, template, slots)
	if terr != nil {
		// Template planning can trip over parameterisation itself (e.g. a
		// literal-only comparison with no column to infer types from). When
		// every slot still carries its stripped literal, plan the original
		// statement directly — uncached, but semantically identical — and
		// let its (more concrete) error stand otherwise.
		if sqlparse.NumUserParams(slots) > 0 {
			return nil, terr
		}
		args, err := sqlparse.BindSlots(slots, nil)
		if err != nil {
			return nil, terr
		}
		stmt, err := sqlparse.Bind(template, args)
		if err != nil {
			return nil, terr
		}
		return g.planDirect(stmt)
	}
	// Bind THIS query's slots — they carry its stripped literals; the cached
	// entry's slots hold whichever literals the template was first planned
	// from and matter only for their inferred type hints.
	eff := slots
	if len(cp.slots) == len(slots) {
		eff = append([]sqlparse.Slot(nil), slots...)
		for i := range eff {
			if eff[i].Hint == sqlparse.PAny {
				eff[i].Hint = cp.slots[i].Hint
			}
		}
	}
	return g.bindPlan(cp, eff, userArgs)
}

// templateFor returns the cached plan template for key, planning and caching
// it on a miss. Entries are keyed to the plan epoch (cluster topology plus
// memory budget and spill backend), so plans scheduled against an outgrown
// Grid or a retuned execution environment re-plan instead of hitting.
func (g *GDQS) templateFor(key string, template *sqlparse.SelectStmt, slots []sqlparse.Slot) (*cachedPlan, error) {
	epoch := g.planEpoch()
	if g.cache != nil {
		if cp, ok := g.cache.Get(key, epoch); ok {
			return cp, nil
		}
	}
	cp, err := g.planTemplate(template, slots)
	if err != nil {
		return nil, err
	}
	if g.cache != nil {
		g.cache.Put(key, epoch, cp)
	}
	return cp, nil
}

// planTemplate compiles, schedules and validates a normalized statement.
// The resulting plan is a reusable template: it is never executed directly,
// only cloned, bound and tagged per execution.
func (g *GDQS) planTemplate(template *sqlparse.SelectStmt, slots []sqlparse.Slot) (*cachedPlan, error) {
	g.chargePlanning()
	lplan, hints, err := logical.PlanParams(template, g.cluster.catalog)
	if err != nil {
		return nil, qerr.Plan("plan", err)
	}
	pplan, err := physical.Schedule(lplan, g.cluster.registry, physical.Options{
		Coordinator:    g.node,
		MaxParallelism: g.cfg.MaxParallelism,
	})
	if err != nil {
		return nil, qerr.Schedule("schedule", err)
	}
	if err := pplan.Validate(); err != nil {
		return nil, qerr.Schedule("validate", err)
	}
	// Upgrade untyped (explicit `?`) slots with the planner's type
	// inference, so a wrong-typed argument fails at bind time instead of
	// deep inside an evaluator.
	out := append([]sqlparse.Slot(nil), slots...)
	for i := range out {
		if out[i].Hint == sqlparse.PAny {
			if h, ok := hints[i]; ok {
				out[i].Hint = h
			}
		}
	}
	return &cachedPlan{template: pplan, slots: out}, nil
}

// bindPlan clones the template, substitutes the execution's parameters, and
// tags the clone with a fresh query-scoped namespace. Validation is skipped:
// binding and tagging cannot change plan structure, and the template was
// validated when planned.
func (g *GDQS) bindPlan(cp *cachedPlan, slots []sqlparse.Slot, userArgs []sqlparse.Expr) (*physical.Plan, error) {
	args, err := sqlparse.BindSlots(slots, userArgs)
	if err != nil {
		return nil, qerr.Plan("bind", err)
	}
	pplan := cp.template.Clone()
	if err := pplan.BindParams(args); err != nil {
		return nil, qerr.Plan("bind", err)
	}
	pplan.Tag(fmt.Sprintf("q%d", queryCounter.Add(1)))
	return pplan, nil
}

// chargePlanning sleeps the modeled compile-and-schedule cost at the
// cluster's time scale (see GDQSConfig.PlanMs), holding the coordinator's
// single compile thread for its duration.
func (g *GDQS) chargePlanning() {
	if g.cfg.PlanMs > 0 {
		g.planMu.Lock()
		g.cluster.clock.Sleep(g.cfg.PlanMs)
		g.planMu.Unlock()
	}
}

// planDirect is the uncached compilation path for statements the template
// pipeline cannot parameterise.
func (g *GDQS) planDirect(stmt *sqlparse.SelectStmt) (*physical.Plan, error) {
	g.chargePlanning()
	lplan, err := logical.Plan(stmt, g.cluster.catalog)
	if err != nil {
		return nil, qerr.Plan("plan", err)
	}
	pplan, err := physical.Schedule(lplan, g.cluster.registry, physical.Options{
		Coordinator:    g.node,
		MaxParallelism: g.cfg.MaxParallelism,
	})
	if err != nil {
		return nil, qerr.Schedule("schedule", err)
	}
	pplan.Tag(fmt.Sprintf("q%d", queryCounter.Add(1)))
	if err := pplan.Validate(); err != nil {
		return nil, qerr.Schedule("validate", err)
	}
	return pplan, nil
}

// run deploys and executes a scheduled plan inside a QuerySession.
func (g *GDQS) run(ctx context.Context, plan *physical.Plan) (*QueryResult, error) {
	o := obs.Default()
	open := o.Gauge(obs.MSessionsOpen)
	open.Add(1)
	defer open.Add(-1)
	start := time.Now()
	s, err := newQuerySession(ctx, g, plan)
	if err != nil {
		o.Counter(obs.Label(obs.MQueries, "outcome", "error")).Inc()
		return nil, err
	}
	defer s.Close()

	rows, err := s.run()
	if err != nil {
		o.Counter(obs.Label(obs.MQueries, "outcome", "error")).Inc()
		return nil, err
	}
	o.Counter(obs.Label(obs.MQueries, "outcome", "ok")).Inc()
	return &QueryResult{
		Columns: plan.Top().Root.OutSchema().Columns(),
		Rows:    rows,
		Stats:   s.stats(g.cluster.clock.MsOf(time.Since(start)), len(rows)),
	}, nil
}

// Explain compiles and schedules a query without executing it.
func (g *GDQS) Explain(query string) (string, error) {
	stmt, err := sqlparse.Parse(query)
	if err != nil {
		return "", err
	}
	lplan, err := logical.Plan(stmt, g.cluster.catalog)
	if err != nil {
		return "", err
	}
	pplan, err := physical.Schedule(lplan, g.cluster.registry, physical.Options{
		Coordinator:    g.node,
		MaxParallelism: g.cfg.MaxParallelism,
	})
	if err != nil {
		return "", err
	}
	return logical.Explain(lplan) + "\n" + pplan.Explain(), nil
}
