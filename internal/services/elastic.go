package services

import (
	"errors"
	"fmt"
	"strings"
	"time"

	"repro/internal/bus"
	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/engine"
	"repro/internal/obs"
	"repro/internal/physical"
	"repro/internal/qerr"
	"repro/internal/simnet"
	"repro/internal/transport"
	"repro/internal/vtime"
	"repro/internal/ws"
)

// This file is the session's recovery manager — the elastic-cluster half of
// the QuerySession. Failure handling is a pipeline with one authoritative
// serialization point, the recovery goroutine:
//
//	detect (membership event | heartbeat | peer-loss | driver error)
//	  → reportDead: mark the machine dead, enqueue it
//	  → recoveryLoop: diagnose (Diagnoser.MarkNodeDead), interrupt the
//	    machine's drivers, check recoverability, then have the Responder
//	    replay the dead machine's unacknowledged work onto survivors
//	    (FailOverNode) with its weight pinned to zero.
//
// Live joins take the mirror path: a membership "join" event admits the
// newcomer into every eligible fragment (AdmitInstance) with a fresh
// runtime and a nonzero weight share, without restarting the query.

// maxFailoverRetries bounds how many times one node's failover is retried
// when further evaluators die while the protocol is in flight.
const maxFailoverRetries = 8

// drive runs one fragment driver to completion and classifies its error.
// In an elastic session, deaths the recovery manager already owns are
// swallowed: an error from a runtime whose machine is diagnosed dead (we
// interrupted it ourselves, or it tripped over its own crashed host) is the
// failure being *handled*, not a new one.
func (s *QuerySession) drive(id string, rt *engine.FragmentRuntime) {
	err := rt.Run(s.ctx)
	if err != nil && !s.swallowDriverErr(rt, err) {
		s.fail("fragment "+id, err)
	}
	s.rtMu.Lock()
	s.active--
	if s.active == 0 {
		s.rtCond.Broadcast()
	}
	s.rtMu.Unlock()
}

// swallowDriverErr reports whether a driver error is an already-diagnosed
// (or self-diagnosing) evaluator death rather than a query failure.
func (s *QuerySession) swallowDriverErr(rt *engine.FragmentRuntime, err error) bool {
	if !s.elastic {
		return false
	}
	if s.nodeDead(rt.Node()) {
		return true
	}
	var down *transport.NodeDownError
	if errors.As(err, &down) && down.Node == rt.Node() {
		// The runtime's own machine crash-stopped underneath it.
		s.reportDead(down.Node)
		return true
	}
	return false
}

// waitDrivers blocks until every driver — including ones added by live
// joins after the query started — has returned.
func (s *QuerySession) waitDrivers() {
	s.rtMu.Lock()
	for s.active > 0 {
		s.rtCond.Wait()
	}
	s.rtMu.Unlock()
}

// reportDead is the single entry point for every failure detector:
// membership events, heartbeat misses, producer peer-loss discoveries, and
// driver errors all funnel here. The first report of a machine marks it
// dead immediately — so concurrent driver errors from it are swallowed from
// that instant — and hands it to the recovery goroutine; repeats are no-ops.
func (s *QuerySession) reportDead(node simnet.NodeID) {
	s.rtMu.Lock()
	if s.dead[node] {
		s.rtMu.Unlock()
		return
	}
	s.dead[node] = true
	s.rtMu.Unlock()
	select {
	case s.deadCh <- node:
	default:
		// Channel capacity exceeds any plausible machine count; if we get
		// here the session is already failing, and losing the enqueue only
		// skips a failover for a query that cannot finish anyway.
	}
}

// nodeDead reports whether a machine has been diagnosed dead.
func (s *QuerySession) nodeDead(node simnet.NodeID) bool {
	s.rtMu.Lock()
	defer s.rtMu.Unlock()
	return s.dead[node]
}

// onMembership receives cluster membership notifications. "leave" is an
// authoritative death diagnosis (the cluster publishes it at the instant of
// the kill); "join" offers a new evaluator to the running query.
func (s *QuerySession) onMembership(n bus.Notification) {
	ev, ok := n.Payload.(core.NodeEvent)
	if !ok {
		return
	}
	switch ev.Kind {
	case "leave":
		s.reportDead(ev.Node)
	case "join":
		select {
		case s.joinCh <- ev:
		default:
		}
	}
}

// recoveryLoop is the serialization point for membership changes: every
// failover and every admission runs here, one at a time, so the Responder's
// view of the topology changes atomically with the session's.
func (s *QuerySession) recoveryLoop() {
	for {
		select {
		case <-s.ctx.Done():
			return
		case node := <-s.deadCh:
			s.handleNodeLoss(node)
		case ev := <-s.joinCh:
			s.admitNode(ev)
		}
	}
}

// handleNodeLoss runs the failure pipeline for one dead machine: diagnose,
// interrupt its local drivers, check the query is recoverable, then replay
// its lost work onto survivors. If another evaluator dies while the
// failover is in flight (the Responder surfaces this as a NodeDownError
// naming the second machine), the second loss is handled first and the
// original failover retried — bounded, and idempotent on the Responder
// side — instead of wedging the session.
func (s *QuerySession) handleNodeLoss(node simnet.NodeID) {
	obs.Default().Timeline().Append(obs.Event{
		Kind:    obs.KindFailure,
		AtMs:    s.cluster.clock.NowMs(),
		Node:    string(node),
		Outcome: "detected",
	})
	if s.diagnoser != nil {
		s.diagnoser.MarkNodeDead(node)
	}

	// Interrupt the dead machine's drivers. The machine is already marked
	// dead (reportDead runs first), so drive() swallows the cause.
	cause := qerr.NodeLoss("evaluator "+string(node), &transport.NodeDownError{Node: node})
	s.rtMu.Lock()
	var local []*engine.FragmentRuntime
	for _, rt := range s.runtimes {
		if rt.Node() == node {
			local = append(local, rt)
		}
	}
	s.rtMu.Unlock()
	for _, rt := range local {
		rt.Interrupt(cause)
	}
	if len(local) == 0 {
		// The machine hosts no fragment of this query (e.g. a data node
		// the plan does not read); nothing to fail over.
		return
	}

	if err := s.unrecoverable(node); err != nil {
		s.fail("node loss", qerr.NodeLoss("evaluator "+string(node), err))
		return
	}
	if s.responder == nil {
		s.fail("node loss", qerr.NodeLoss("evaluator "+string(node),
			errors.New("services: no responder to run failover")))
		return
	}

	for attempt := 0; ; attempt++ {
		err := s.responder.FailOverNode(node)
		if err == nil {
			break
		}
		var down *transport.NodeDownError
		if errors.As(err, &down) && down.Node != node && attempt < maxFailoverRetries {
			// A second evaluator died mid-failover. Mark it so in-flight
			// driver errors are swallowed, recover it first (FailOverNode
			// is idempotent and skips already-handled work), then retry.
			s.rtMu.Lock()
			first := !s.dead[down.Node]
			s.dead[down.Node] = true
			s.rtMu.Unlock()
			if first {
				s.handleNodeLoss(down.Node)
			}
			continue
		}
		s.fail("failover", qerr.NodeLoss("evaluator "+string(node), err))
		return
	}
	s.failovers.Add(1)
}

// unrecoverable returns a descriptive error when losing the machine dooms
// the query: some fragment it hosted is not partitioned (no replica can
// take over), or every instance of a fragment is now dead.
func (s *QuerySession) unrecoverable(node simnet.NodeID) error {
	type tally struct {
		touched bool
		alive   int
	}
	s.rtMu.Lock()
	perFrag := map[string]*tally{}
	for id, rt := range s.runtimes {
		fid := id[:strings.LastIndex(id, "#")]
		t := perFrag[fid]
		if t == nil {
			t = &tally{}
			perFrag[fid] = t
		}
		if rt.Node() == node {
			t.touched = true
		}
		if !s.dead[rt.Node()] {
			t.alive++
		}
	}
	s.rtMu.Unlock()
	for _, frag := range s.plan.Fragments {
		t := perFrag[frag.ID]
		if t == nil || !t.touched {
			continue
		}
		if !frag.Partitioned {
			return fmt.Errorf("services: fragment %s is not partitioned; no surviving instance can take over", frag.ID)
		}
		if t.alive == 0 {
			return fmt.Errorf("services: fragment %s lost every instance", frag.ID)
		}
	}
	return nil
}

// heartbeatLoop actively probes one fragment instance per evaluating
// machine. An unreachable-node error is a definitive diagnosis; other
// failures (e.g. timeouts) must repeat HeartbeatMisses times before the
// machine is declared dead. Probes ride the same RPC path as adaptations,
// so a machine that can acknowledge a probe can also acknowledge a
// reweighting.
func (s *QuerySession) heartbeatLoop() {
	every := s.gdqs.cfg.HeartbeatEvery
	if every <= 0 {
		every = DefaultHeartbeatEvery
	}
	misses := s.gdqs.cfg.HeartbeatMisses
	if misses <= 0 {
		misses = DefaultHeartbeatMisses
	}
	ticker := time.NewTicker(every)
	defer ticker.Stop()
	missed := map[simnet.NodeID]int{}
	for {
		select {
		case <-s.ctx.Done():
			return
		case <-ticker.C:
		}
		for node, ref := range s.probeTargets() {
			err := s.responder.Ping(ref)
			if err == nil {
				missed[node] = 0
				continue
			}
			if s.ctx.Err() != nil {
				return
			}
			var down *transport.NodeDownError
			if errors.As(err, &down) {
				s.reportDead(down.Node)
				continue
			}
			missed[node]++
			if missed[node] >= misses {
				missed[node] = 0
				s.reportDead(node)
			}
		}
	}
}

// probeTargets picks one live fragment instance per distinct evaluating
// machine (excluding the coordinator, whose death takes the session with
// it regardless).
func (s *QuerySession) probeTargets() map[simnet.NodeID]core.InstanceRef {
	s.rtMu.Lock()
	defer s.rtMu.Unlock()
	out := map[simnet.NodeID]core.InstanceRef{}
	for _, rt := range s.runtimes {
		node := rt.Node()
		if node == s.gdqs.node || s.dead[node] {
			continue
		}
		if _, ok := out[node]; !ok {
			out[node] = core.InstanceRef{Index: rt.Instance(), Node: node, Service: rt.Service()}
		}
	}
	return out
}

// admitNode offers a newly joined machine to every fragment that can
// accept it. Only stateless fragments connected entirely by weighted
// exchanges are join-eligible mid-query; hash-partitioned fragments pick
// the newcomer up at the next query, when the plan cache re-schedules
// against the bumped topology epoch (see DESIGN.md §5h).
func (s *QuerySession) admitNode(ev core.NodeEvent) {
	node := ev.Node
	if node == s.gdqs.node || s.nodeDead(node) || !s.cluster.Alive(node) {
		return
	}
	svcs := s.cluster.servicesOf(node)
	store := s.cluster.storeOf(node)
	for _, frag := range s.plan.Fragments {
		if !s.joinEligible(frag) || !fragmentServable(frag.Root, svcs, store) {
			continue
		}
		if err := s.admitInto(frag, node); err != nil {
			// Joining is opportunistic: on any error the query simply
			// continues on its existing membership.
			continue
		}
		obs.Default().Timeline().Append(obs.Event{
			Kind:     obs.KindMembership,
			AtMs:     s.cluster.clock.NowMs(),
			Node:     string(node),
			Fragment: frag.ID,
			Detail:   "join",
		})
		s.joined.Add(1)
	}
}

// joinEligible reports whether a fragment can absorb a new instance while
// running: it must be partitioned, stateless, and wired to its neighbours
// exclusively by weighted (stateless) exchanges.
func (s *QuerySession) joinEligible(frag *physical.FragmentSpec) bool {
	if !frag.Partitioned || frag.Stateful || frag.Output == nil {
		return false
	}
	if frag.Output.Policy != physical.PolicyWeighted || frag.Output.Stateful {
		return false
	}
	for _, up := range s.plan.Fragments {
		if up.Output != nil && up.Output.ConsumerFragment == frag.ID {
			if up.Output.Policy != physical.PolicyWeighted || up.Output.Stateful {
				return false
			}
		}
	}
	return true
}

// fragmentServable checks the joining machine can actually evaluate the
// fragment: every Web Service operation it calls is registered there, and
// every table it scans is hosted there.
func fragmentServable(op *physical.OpSpec, svcs *ws.Registry, store *dataset.Store) bool {
	if op == nil {
		return true
	}
	switch op.Kind {
	case physical.KOpCall:
		if svcs == nil {
			return false
		}
		if _, err := svcs.Lookup(op.Fn); err != nil {
			return false
		}
	case physical.KScan:
		if store == nil {
			return false
		}
		if _, err := store.Table(op.Table); err != nil {
			return false
		}
	}
	for _, child := range op.Children {
		if !fragmentServable(child, svcs, store) {
			return false
		}
	}
	return true
}

// admitInto builds a runtime for one new instance of a fragment and splices
// it into the running query: the Responder attaches it to its neighbours
// (consumers learn of the new producer before any producer routes to it)
// and installs a weight vector giving the newcomer an equal share of the
// live instances' work; the Diagnoser extends its cost bookkeeping; a MED
// is added for the machine if it never hosted one; and finally a driver is
// started under the session's active counter.
func (s *QuerySession) admitInto(frag *physical.FragmentSpec, node simnet.NodeID) error {
	w, ok := s.responder.CurrentWeights(frag.ID)
	if !ok {
		return fmt.Errorf("services: fragment %s is not registered for adaptation", frag.ID)
	}
	idx := len(w)
	live := 0
	for _, x := range w {
		if x > 0 {
			live++
		}
	}
	if live == 0 {
		return fmt.Errorf("services: fragment %s has no live instances to share with", frag.ID)
	}
	// Newcomer gets 1/(live+1); survivors scale by live/(live+1).
	share := 1.0 / float64(live+1)
	neww := make([]float64, idx+1)
	sum := 0.0
	for i, x := range w {
		neww[i] = x * (1 - share)
		sum += neww[i]
	}
	neww[idx] = 1 - sum

	// Reserve a driver slot while the query is provably still running; the
	// reservation also keeps run() from completing under our feet.
	s.rtMu.Lock()
	if s.active == 0 || s.ctx.Err() != nil {
		s.rtMu.Unlock()
		return fmt.Errorf("services: query finished before %s could join", node)
	}
	s.active++
	s.rtMu.Unlock()
	committed := false
	defer func() {
		if !committed {
			s.rtMu.Lock()
			s.active--
			if s.active == 0 {
				s.rtCond.Broadcast()
			}
			s.rtMu.Unlock()
		}
	}()

	nd := s.cluster.net.Node(node)
	if nd == nil {
		return fmt.Errorf("services: joining node %q is not registered", node)
	}
	g := s.gdqs
	ectx := &engine.ExecContext{
		Clock:        s.cluster.clock,
		Node:         nd,
		Meter:        vtime.NewMeter(s.cluster.clock),
		Store:        s.cluster.storeOf(node),
		Services:     s.cluster.servicesOf(node),
		Costs:        s.cluster.cfg.Costs,
		MonitorEvery: g.cfg.MonitorEvery,
		Buckets:      s.cluster.cfg.Buckets,
		Fragment:     frag.ID,
		Instance:     idx,
		Parallelism:  resolveParallelism(g.cfg.Parallelism),
		Readahead:    g.cfg.ScanReadahead,
		Mem:          s.mem,
		Spill:        s.spill,
	}
	if g.cfg.MonitorEvery > 0 {
		ectx.Monitor = &core.MonitorAdapter{Bus: s.cluster.bus, Node: node}
	}
	cfg := engine.RuntimeConfig{
		Plan:            s.plan,
		Fragment:        frag,
		Instance:        idx,
		Ctx:             ectx,
		Tr:              s.cluster.tr,
		Node:            node,
		BufferTuples:    s.cluster.cfg.BufferTuples,
		CheckpointEvery: s.cluster.cfg.CheckpointEvery,
		FT:              true,
		OnPeerDown:      s.reportDead,
	}
	rt, err := engine.NewFragmentRuntime(cfg)
	if err != nil {
		return err
	}

	// The new consumer's producer list comes from the plan, which may name
	// evaluators that have since died; detach them so end-of-stream does
	// not wait for machines that will never send.
	s.rtMu.Lock()
	deadNow := make(map[simnet.NodeID]bool, len(s.dead))
	for n := range s.dead {
		deadNow[n] = true
	}
	s.rtMu.Unlock()
	for _, up := range s.plan.Fragments {
		if up.Output == nil || up.Output.ConsumerFragment != frag.ID {
			continue
		}
		cons := rt.Consumer(up.Output.ID)
		if cons == nil {
			continue
		}
		for i, n := range up.Instances {
			if deadNow[n] {
				_ = cons.DetachProducer(i)
			}
		}
	}

	ref := core.InstanceRef{Index: idx, Node: node, Service: rt.Service()}
	if err := s.responder.AdmitInstance(frag.ID, ref, neww); err != nil {
		rt.Stop()
		return err
	}
	if s.diagnoser != nil {
		s.diagnoser.Extend(frag.ID, ref, neww)
	}

	s.rtMu.Lock()
	if !s.medNodes[node] {
		s.medNodes[node] = true
		s.meds = append(s.meds, core.NewMED(s.ctx, s.cluster.bus, node, g.cfg.MED))
	}
	if s.ctx.Err() != nil {
		// Close() has started tearing the session down; it will not see
		// this runtime, so stop it ourselves.
		s.rtMu.Unlock()
		rt.Stop()
		return s.ctx.Err()
	}
	s.runtimes[frag.InstanceID(idx)] = rt
	committed = true
	s.rtMu.Unlock()
	go s.drive(frag.InstanceID(idx), rt)
	return nil
}
