// Package services implements the Grid service layer of OGSA-DQP (paper
// §2): the GDQS (Grid Distributed Query Service) that accepts queries,
// compiles and schedules them, and dynamically creates evaluation services
// on the selected machines; and the AGQESs (Adaptive Grid Query Evaluation
// Services), each hosting the query engine plus the adaptivity components.
// The Cluster type assembles a complete simulated Grid — machines, network,
// notification bus, registries — inside one process.
package services

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/bus"
	"repro/internal/catalog"
	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/engine"
	"repro/internal/obs"
	"repro/internal/registry"
	"repro/internal/relation"
	"repro/internal/simnet"
	"repro/internal/transport"
	"repro/internal/vtime"
	"repro/internal/ws"
)

// ClusterConfig sets the physical characteristics of the simulated Grid.
type ClusterConfig struct {
	// Scale is the real duration of one paper millisecond
	// (vtime.DefaultScale when zero).
	Scale time.Duration
	// Costs are the engine's operator cost parameters.
	Costs engine.Costs
	// Buckets is the hash-policy bucket count.
	Buckets int
	// BufferTuples and CheckpointEvery tune the exchanges.
	BufferTuples    int
	CheckpointEvery int
}

// Cluster is a simulated Grid: nodes, network, transport, notification bus,
// and the resource registry / metadata catalog the GDQS consults.
type Cluster struct {
	cfg   ClusterConfig
	clock *vtime.Clock
	net   *simnet.Network
	tr    *transport.InProc
	bus   *bus.Bus

	registry *registry.Registry
	catalog  *catalog.Catalog

	mu       sync.Mutex
	stores   map[simnet.NodeID]*dataset.Store
	services map[simnet.NodeID]*ws.Registry

	// version counts topology changes; cached plans are keyed to it, so a
	// Grid gaining or losing resources invalidates every cached placement.
	version atomic.Uint64
}

// NewCluster builds an empty simulated Grid.
func NewCluster(cfg ClusterConfig) *Cluster {
	if cfg.Scale <= 0 {
		cfg.Scale = vtime.DefaultScale
	}
	if cfg.Costs == (engine.Costs{}) {
		cfg.Costs = engine.DefaultCosts()
	}
	if cfg.Buckets <= 0 {
		cfg.Buckets = engine.DefaultBuckets
	}
	clock := vtime.NewClock(cfg.Scale)
	net := simnet.NewNetwork(clock)
	c := &Cluster{
		cfg:      cfg,
		clock:    clock,
		net:      net,
		tr:       transport.NewInProc(net),
		bus:      bus.New(clock, net),
		registry: registry.New(),
		catalog:  catalog.New(),
		stores:   make(map[simnet.NodeID]*dataset.Store),
		services: make(map[simnet.NodeID]*ws.Registry),
	}
	return c
}

// Clock exposes the cluster's virtual clock.
func (c *Cluster) Clock() *vtime.Clock { return c.clock }

// Network exposes the simulated network (experiments perturb nodes through
// it).
func (c *Cluster) Network() *simnet.Network { return c.net }

// Bus exposes the notification bus (examples subscribe to watch
// adaptations happen).
func (c *Cluster) Bus() *bus.Bus { return c.bus }

// Transport exposes the message transport.
func (c *Cluster) Transport() transport.Transport { return c.tr }

// Registry exposes the resource registry.
func (c *Cluster) Registry() *registry.Registry { return c.registry }

// Catalog exposes the metadata catalog.
func (c *Cluster) Catalog() *catalog.Catalog { return c.catalog }

// Node returns a machine by ID, or nil.
func (c *Cluster) Node(id simnet.NodeID) *simnet.Node { return c.net.Node(id) }

// AddDataNode registers a machine exposing the store's tables as Grid Data
// Services, and advertises the table metadata in the catalog — the role the
// resource registries and OGSA-DAI wrappers play in the paper.
func (c *Cluster) AddDataNode(id simnet.NodeID, store *dataset.Store) error {
	c.net.AddNode(id)
	c.mu.Lock()
	c.stores[id] = store
	c.mu.Unlock()
	var tables []string
	for _, name := range store.Names() {
		tbl, err := store.Table(name)
		if err != nil {
			return err
		}
		if err := c.catalog.PutTable(catalog.TableMeta{
			Name:          tbl.Name,
			Schema:        tbl.Schema,
			Cardinality:   tbl.Cardinality(),
			AvgTupleBytes: tbl.AvgTupleBytes(),
			TotalBytes:    tbl.TotalBytes(),
			Node:          id,
		}); err != nil {
			return err
		}
		tables = append(tables, tbl.Name)
	}
	c.registry.RegisterData(id, tables...)
	c.version.Add(1)
	return nil
}

// Version is the topology epoch: it changes whenever resources join the
// Grid, invalidating plan-cache entries scheduled against the old topology.
func (c *Cluster) Version() uint64 { return c.version.Load() }

// AddComputeNode registers a machine able to host evaluation services, with
// the given static speed claim and callable Web Service operations.
func (c *Cluster) AddComputeNode(id simnet.NodeID, relativeSpeed float64, services *ws.Registry) error {
	c.net.AddNode(id)
	if services == nil {
		services = ws.NewRegistry()
	}
	c.mu.Lock()
	c.services[id] = services
	c.mu.Unlock()
	if err := c.registry.RegisterCompute(id, relativeSpeed); err != nil {
		return err
	}
	for _, svc := range services.Services() {
		if err := c.catalog.PutFunction(catalog.FunctionMeta{
			Name:       svc.Name(),
			ArgTypes:   svc.ArgTypes(),
			ResultType: svc.ResultType(),
			CostMs:     svc.BaseCostMs(),
		}); err != nil {
			return err
		}
	}
	c.version.Add(1)
	obs.Default().Gauge(obs.MEvaluatorsLive).Add(1)
	c.bus.Publish("cluster", id, core.TopicMembership,
		core.NodeEvent{Kind: "join", Node: id, Speed: relativeSpeed})
	return nil
}

// KillNode crash-stops a machine: from this moment every message to or from
// it fails with transport.NodeDownError, and any commit section it had not
// entered never runs. The topology epoch advances (cached plans scheduled
// onto the dead machine re-plan instead of hitting) and a "leave" event is
// published on core.TopicMembership, which elastic sessions treat as an
// authoritative failure diagnosis. Idempotent: killing a dead node is a
// no-op.
func (c *Cluster) KillNode(id simnet.NodeID) error {
	node := c.net.Node(id)
	if node == nil {
		return fmt.Errorf("services: kill of unknown node %q", id)
	}
	if !node.Alive() {
		return nil
	}
	node.Fail()
	c.version.Add(1)
	c.mu.Lock()
	_, isCompute := c.services[id]
	c.mu.Unlock()
	if isCompute {
		obs.Default().Gauge(obs.MEvaluatorsLive).Add(-1)
	}
	obs.Default().Timeline().Append(obs.Event{
		Kind:   obs.KindMembership,
		AtMs:   c.clock.NowMs(),
		Node:   string(id),
		Detail: "leave",
	})
	c.bus.Publish("cluster", id, core.TopicMembership, core.NodeEvent{Kind: "leave", Node: id})
	return nil
}

// Alive reports whether a machine is registered and has not crash-stopped.
func (c *Cluster) Alive(id simnet.NodeID) bool {
	node := c.net.Node(id)
	return node != nil && node.Alive()
}

// storeOf returns the data store hosted on a node (nil if none).
func (c *Cluster) storeOf(id simnet.NodeID) *dataset.Store {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.stores[id]
}

// servicesOf returns the Web Services hosted on a node (nil if none).
func (c *Cluster) servicesOf(id simnet.NodeID) *ws.Registry {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.services[id]
}

// Close shuts the cluster's bus down.
func (c *Cluster) Close() {
	c.bus.Close()
}

// rowSink streams result tuples to the collector. Close is idempotent: the
// GDQS also closes it on error paths where the top driver never did.
type rowSink struct {
	ch   chan relation.Tuple
	once sync.Once
}

func (s *rowSink) Send(t relation.Tuple) error {
	s.ch <- t
	return nil
}

func (s *rowSink) Close() error {
	s.once.Do(func() { close(s.ch) })
	return nil
}

// ensureNode registers a node on first use (the coordinator may not be a
// compute or data resource).
func (c *Cluster) ensureNode(id simnet.NodeID) error {
	if c.net.Node(id) == nil {
		c.net.AddNode(id)
	}
	if c.net.Node(id) == nil {
		return fmt.Errorf("services: cannot create node %q", id)
	}
	return nil
}
