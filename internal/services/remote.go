package services

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"time"

	"path/filepath"
	"repro/internal/bus"
	"repro/internal/catalog"
	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/engine"
	"repro/internal/logical"
	"repro/internal/physical"
	"repro/internal/qerr"
	"repro/internal/registry"
	"repro/internal/relation"
	"repro/internal/simnet"
	"repro/internal/sqlparse"
	"repro/internal/storage"
	"repro/internal/transport"
	"repro/internal/vtime"
	"repro/internal/ws"
	"sort"
)

// Manifest describes a multi-process deployment identically to every
// participant: which machines exist, what they host, and the shared cost
// model. Because the demo database is generated deterministically from its
// seed and the scheduler is deterministic, every process derives the same
// physical plan from the same SQL — the deploy message carries only the
// query text.
type Manifest struct {
	// Scale is the real duration of a paper millisecond.
	Scale time.Duration
	Costs engine.Costs
	// Buckets, BufferTuples and CheckpointEvery tune the exchanges.
	Buckets         int
	BufferTuples    int
	CheckpointEvery int

	Coordinator simnet.NodeID
	DataNodes   []DataNodeSpec
	Compute     []ComputeNodeSpec

	// Adaptive enables the AQP components; the coordinator hosts the
	// MonitoringEventDetectors, Diagnoser and Responder, and evaluators
	// forward raw monitoring events to it over the transport.
	Adaptive     bool
	MonitorEvery int
	Assessment   core.Assessment
	Response     core.Response

	// Parallelism is the morsel worker-pool width of each fragment driver
	// (0/1 serial, negative resolves to the host's GOMAXPROCS).
	Parallelism int

	// MemoryBudgetBytes caps each deployment's stateful-operator memory per
	// machine (0 unbudgeted) at any Parallelism width — morsel workers
	// account through per-stripe handles of one striped budget and spill
	// concurrently. SpillDir roots posix spill runs, with each process
	// spilling under its own node-named subdirectory (empty keeps spills in
	// memory).
	MemoryBudgetBytes int64
	SpillDir          string

	// ScanReadahead is the stored-scan prefetch depth in blocks (0 default,
	// negative synchronous); see GDQSConfig.ScanReadahead.
	ScanReadahead int
}

// spillBackendFor builds the process-local spill backend for one manifest
// participant: posix under a node-named subdirectory of SpillDir (so
// co-hosted processes sharing one directory never collide), or the
// in-memory backend when no directory is configured.
func (m Manifest) spillBackendFor(node simnet.NodeID) (storage.Backend, error) {
	if m.SpillDir == "" {
		return storage.NewMemory(), nil
	}
	return storage.NewPosix(filepath.Join(m.SpillDir, string(node)))
}

// DataNodeSpec describes one data machine.
type DataNodeSpec struct {
	Node         simnet.NodeID
	Sequences    int
	Interactions int
}

// ComputeNodeSpec describes one evaluation machine.
type ComputeNodeSpec struct {
	Node          simnet.NodeID
	Speed         float64
	EntropyCostMs float64
}

func (m Manifest) withDefaults() Manifest {
	if m.Scale <= 0 {
		m.Scale = vtime.DefaultScale
	}
	if m.Costs == (engine.Costs{}) {
		m.Costs = engine.DefaultCosts()
	}
	if m.Buckets <= 0 {
		m.Buckets = engine.DefaultBuckets
	}
	if m.MonitorEvery == 0 && m.Adaptive {
		m.MonitorEvery = 10
	}
	if m.Assessment == 0 {
		m.Assessment = core.A1
	}
	if m.Response == 0 {
		m.Response = core.R2
	}
	return m
}

// storeFor builds the deterministic table store of a data node.
func (s DataNodeSpec) storeFor() *dataset.Store {
	seqs := s.Sequences
	if seqs == 0 {
		seqs = dataset.DefaultSequences
	}
	ints := s.Interactions
	if ints == 0 {
		ints = dataset.DefaultInteractions
	}
	return dataset.DemoSized(seqs, ints)
}

// metadata derives the catalog and registry every process agrees on.
func (m Manifest) metadata() (*catalog.Catalog, *registry.Registry, error) {
	cat := catalog.New()
	reg := registry.New()
	for _, d := range m.DataNodes {
		store := d.storeFor()
		var tables []string
		for _, name := range store.Names() {
			tbl, err := store.Table(name)
			if err != nil {
				return nil, nil, err
			}
			if err := cat.PutTable(catalog.TableMeta{
				Name:          tbl.Name,
				Schema:        tbl.Schema,
				Cardinality:   tbl.Cardinality(),
				AvgTupleBytes: tbl.AvgTupleBytes(),
				TotalBytes:    tbl.TotalBytes(),
				Node:          d.Node,
			}); err != nil {
				return nil, nil, err
			}
			tables = append(tables, tbl.Name)
		}
		reg.RegisterData(d.Node, tables...)
	}
	for _, c := range m.Compute {
		if err := reg.RegisterCompute(c.Node, c.Speed); err != nil {
			return nil, nil, err
		}
		for _, svc := range computeServices(c).Services() {
			if err := cat.PutFunction(catalog.FunctionMeta{
				Name:       svc.Name(),
				ArgTypes:   svc.ArgTypes(),
				ResultType: svc.ResultType(),
				CostMs:     svc.BaseCostMs(),
			}); err != nil {
				return nil, nil, err
			}
		}
	}
	return cat, reg, nil
}

func computeServices(c ComputeNodeSpec) *ws.Registry {
	return ws.NewRegistry(ws.Entropy{CostMs: c.EntropyCostMs}, ws.SequenceLength{})
}

// plan derives the (deterministic) physical plan of a query.
func (m Manifest) plan(sql string) (*physical.Plan, error) {
	cat, reg, err := m.metadata()
	if err != nil {
		return nil, err
	}
	stmt, err := sqlparse.Parse(sql)
	if err != nil {
		return nil, err
	}
	lp, err := logical.Plan(stmt, cat)
	if err != nil {
		return nil, err
	}
	return physical.Schedule(lp, reg, physical.Options{Coordinator: m.Coordinator})
}

// gqesService is the deploy/teardown endpoint every evaluator registers.
const gqesService = "gqes"

// monitorService is the coordinator endpoint receiving forwarded raw
// monitoring events.
const monitorService = "aqp/monitor"

// remoteMonitorSink forwards the engine's raw events to the coordinator
// over the transport.
type remoteMonitorSink struct {
	tr    transport.Transport
	local simnet.NodeID
	coord simnet.NodeID
}

func (s *remoteMonitorSink) EmitM1(e engine.M1Event) {
	msg := &transport.Message{Kind: transport.KindMonitor, Mon: &transport.Monitor{
		Fragment: e.Fragment, Instance: e.Instance, Node: e.Node,
		CostMs: e.CostPerTupleMs, WaitMs: e.WaitPerTupleMs,
		Selectivity: e.Selectivity, Produced: e.Produced,
	}}
	_, _ = s.tr.Send(s.local, s.coord, monitorService, msg)
}

func (s *remoteMonitorSink) EmitM2(e engine.M2Event) {
	msg := &transport.Message{Kind: transport.KindMonitor, Exchange: e.Exchange,
		Mon: &transport.Monitor{
			IsM2: true, Fragment: e.Fragment, Instance: e.Instance, Node: e.Node,
			ConsumerFragment: e.ConsumerFragment, ConsumerInstance: e.ConsumerInstance,
			ConsumerNode: e.ConsumerNode, SendCostMs: e.SendCostMs, TupleCount: e.TupleCount,
		}}
	_, _ = s.tr.Send(s.local, s.coord, monitorService, msg)
}

// Evaluator is the multi-process GQES/AGQES daemon: it waits for deploy
// requests, instantiates the fragment instances scheduled on its machine,
// and runs them.
type Evaluator struct {
	manifest Manifest
	node     simnet.NodeID
	tr       transport.Transport
	clock    *vtime.Clock
	machine  *simnet.Node
	store    *dataset.Store
	services *ws.Registry
	spill    storage.Backend

	mu       sync.Mutex
	runtimes []*engine.FragmentRuntime
	// cancel ends the context of the active deployment's drivers; teardown
	// uses it to interrupt runtimes that are still blocked mid-query.
	cancel context.CancelFunc
}

// NewEvaluator builds and registers the evaluator for the local node.
func NewEvaluator(manifest Manifest, node simnet.NodeID, tr transport.Transport) (*Evaluator, error) {
	manifest = manifest.withDefaults()
	e := &Evaluator{
		manifest: manifest,
		node:     node,
		tr:       tr,
		clock:    vtime.NewClock(manifest.Scale),
		machine:  simnet.NewNode(node),
	}
	for _, d := range manifest.DataNodes {
		if d.Node == node {
			e.store = d.storeFor()
		}
	}
	for _, c := range manifest.Compute {
		if c.Node == node {
			e.services = computeServices(c)
		}
	}
	spill, err := manifest.spillBackendFor(node)
	if err != nil {
		return nil, err
	}
	e.spill = spill
	tr.Register(node, gqesService, e.handle)
	return e, nil
}

// SetPerturbation installs an artificial load on the local machine.
func (e *Evaluator) SetPerturbation(p vtime.Perturbation) {
	e.machine.SetPerturbation(p)
}

func (e *Evaluator) handle(from simnet.NodeID, msg *transport.Message) {
	switch msg.Kind {
	case transport.KindDeploy:
		err := e.deploy(msg.Query)
		e.reply(msg, err)
	case transport.KindTeardown:
		e.teardown()
		e.reply(msg, nil)
	}
}

func (e *Evaluator) reply(msg *transport.Message, err error) {
	if msg.Ctrl == nil || msg.Ctrl.ReplyService == "" {
		return
	}
	reply := &transport.Ctrl{RequestID: msg.Ctrl.RequestID, OK: err == nil}
	if err != nil {
		reply.Err = err.Error()
	}
	out := &transport.Message{Kind: transport.KindReply, Ctrl: reply}
	_, _ = e.tr.Send(e.node, msg.Ctrl.ReplyTo, msg.Ctrl.ReplyService, out)
}

// deploy instantiates and starts this machine's fragment instances.
func (e *Evaluator) deploy(sql string) error {
	plan, err := e.manifest.plan(sql)
	if err != nil {
		return err
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	if len(e.runtimes) > 0 {
		return fmt.Errorf("services: evaluator %s already has an active query", e.node)
	}
	mem := storage.NewBudget(e.manifest.MemoryBudgetBytes)
	var started []*engine.FragmentRuntime
	for _, frag := range plan.Fragments {
		for i, nodeID := range frag.Instances {
			if nodeID != e.node {
				continue
			}
			ctx := &engine.ExecContext{
				Clock:        e.clock,
				Node:         e.machine,
				Meter:        vtime.NewMeter(e.clock),
				Store:        e.store,
				Services:     e.services,
				Costs:        e.manifest.Costs,
				MonitorEvery: e.manifest.MonitorEvery,
				Buckets:      e.manifest.Buckets,
				Fragment:     frag.ID,
				Instance:     i,
				Parallelism:  resolveParallelism(e.manifest.Parallelism),
				Readahead:    e.manifest.ScanReadahead,
				Mem:          mem,
				Spill:        e.spill,
			}
			if e.manifest.Adaptive && e.manifest.MonitorEvery > 0 {
				ctx.Monitor = &remoteMonitorSink{tr: e.tr, local: e.node, coord: e.manifest.Coordinator}
			}
			rt, err := engine.NewFragmentRuntime(engine.RuntimeConfig{
				Plan:            plan,
				Fragment:        frag,
				Instance:        i,
				Ctx:             ctx,
				Tr:              e.tr,
				Node:            nodeID,
				BufferTuples:    e.manifest.BufferTuples,
				CheckpointEvery: e.manifest.CheckpointEvery,
			})
			if err != nil {
				for _, r := range started {
					r.Stop()
				}
				return err
			}
			started = append(started, rt)
		}
	}
	e.runtimes = started
	dctx, cancel := context.WithCancel(context.Background())
	e.cancel = cancel
	for _, rt := range started {
		go func(rt *engine.FragmentRuntime) { _ = rt.Run(dctx) }(rt)
	}
	return nil
}

func (e *Evaluator) teardown() {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.cancel != nil {
		e.cancel()
		e.cancel = nil
	}
	for _, rt := range e.runtimes {
		rt.Stop()
	}
	e.runtimes = nil
	// One query at a time, so sweeping the whole process-local namespace
	// reclaims exactly this deployment's spill runs.
	_, _ = e.spill.RemoveMatching("")
}

// Close tears down any active query and unregisters the evaluator.
func (e *Evaluator) Close() {
	e.teardown()
	e.tr.Unregister(e.node, gqesService)
	_ = e.spill.Close()
}

// RemoteCoordinator is the multi-process GDQS: it plans queries, deploys
// fragments to the evaluators over the transport, hosts the top fragment
// and the result sink locally, and — when adaptive — hosts every
// MonitoringEventDetector plus the Diagnoser and Responder, fed by
// forwarded raw events.
type RemoteCoordinator struct {
	manifest Manifest
	tr       transport.Transport
	clock    *vtime.Clock
	machine  *simnet.Node
	bus      *bus.Bus
	spill    storage.Backend

	mu sync.Mutex // serialises Execute
}

// NewRemoteCoordinator builds the coordinator for the manifest's
// coordinator node.
func NewRemoteCoordinator(manifest Manifest, tr transport.Transport) (*RemoteCoordinator, error) {
	manifest = manifest.withDefaults()
	clock := vtime.NewClock(manifest.Scale)
	c := &RemoteCoordinator{
		manifest: manifest,
		tr:       tr,
		clock:    clock,
		machine:  simnet.NewNode(manifest.Coordinator),
		bus:      bus.New(clock, nil),
	}
	spill, err := manifest.spillBackendFor(manifest.Coordinator)
	if err != nil {
		return nil, err
	}
	c.spill = spill
	return c, nil
}

// Close shuts the coordinator's bus down.
func (c *RemoteCoordinator) Close() {
	c.bus.Close()
	_ = c.spill.Close()
}

// rpcWait sends a request to a remote service and waits for the ack, the
// timeout, or ctx — whichever comes first. A nil ctx waits only on the
// timeout (teardown must complete even for a canceled query).
func (c *RemoteCoordinator) rpcWait(ctx context.Context, to simnet.NodeID, service string, msg *transport.Message, timeout time.Duration) error {
	if ctx == nil {
		ctx = context.Background()
	}
	replyCh := make(chan *transport.Ctrl, 1)
	replyService := fmt.Sprintf("deploy-reply/%d", time.Now().UnixNano())
	c.tr.Register(c.manifest.Coordinator, replyService, func(_ simnet.NodeID, m *transport.Message) {
		if m.Kind == transport.KindReply && m.Ctrl != nil {
			select {
			case replyCh <- m.Ctrl:
			default:
			}
		}
	})
	defer c.tr.Unregister(c.manifest.Coordinator, replyService)
	msg.Ctrl = &transport.Ctrl{RequestID: 1, ReplyTo: c.manifest.Coordinator, ReplyService: replyService}
	if _, err := c.tr.Send(c.manifest.Coordinator, to, service, msg); err != nil {
		return qerr.Transport(fmt.Sprintf("%s to %s", msg.Kind, to), err)
	}
	select {
	case reply := <-replyCh:
		if !reply.OK {
			return fmt.Errorf("services: %s on %s: %s", msg.Kind, to, reply.Err)
		}
		return nil
	case <-ctx.Done():
		return qerr.FromContext(ctx)
	case <-time.After(timeout):
		return qerr.Transport(fmt.Sprintf("%s on %s", msg.Kind, to),
			fmt.Errorf("services: reply timed out after %v", timeout))
	}
}

// evaluatorNodes lists every machine hosting fragments other than the
// coordinator, ordered so that consumers deploy before their producers: a
// producer that starts pumping towards a not-yet-registered consumer
// endpoint would lose buffers. Plan fragments are bottom-up (producers
// first), so ordering nodes by the highest fragment index they host,
// descending, deploys the consuming side of every exchange first.
func (c *RemoteCoordinator) evaluatorNodes(plan *physical.Plan) []simnet.NodeID {
	maxIdx := make(map[simnet.NodeID]int)
	for idx, f := range plan.Fragments {
		for _, n := range f.Instances {
			if n == c.manifest.Coordinator {
				continue
			}
			if idx > maxIdx[n] || maxIdx[n] == 0 {
				maxIdx[n] = idx + 1
			}
		}
	}
	out := make([]simnet.NodeID, 0, len(maxIdx))
	for n := range maxIdx {
		out = append(out, n)
	}
	sort.Slice(out, func(i, j int) bool {
		if maxIdx[out[i]] != maxIdx[out[j]] {
			return maxIdx[out[i]] > maxIdx[out[j]]
		}
		return out[i] < out[j]
	})
	return out
}

// Execute plans, deploys and runs one query across the remote evaluators
// under ctx: cancelling it interrupts the local drivers (and the teardown
// defers reclaim the remote ones), returning qerr.ErrCanceled; exceeding
// the timeout returns qerr.ErrTimeout. A nil ctx runs under only the
// timeout.
func (c *RemoteCoordinator) Execute(ctx context.Context, sql string, timeout time.Duration) (*QueryResult, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if timeout <= 0 {
		timeout = 5 * time.Minute
	}
	plan, err := c.manifest.plan(sql)
	if err != nil {
		return nil, qerr.Plan("plan", err)
	}
	start := time.Now()
	mem := storage.NewBudget(c.manifest.MemoryBudgetBytes)
	defer func() { _, _ = c.spill.RemoveMatching("") }()

	// First failure — local fragment, deadline, or external cancellation —
	// cancels sctx, which interrupts every local driver.
	runCtx, cancel := context.WithCancelCause(ctx)
	defer cancel(nil)
	sctx, stopTimeout := context.WithTimeout(runCtx, timeout)
	defer stopTimeout()

	// Adaptivity components, all hosted here; raw events arrive over the
	// transport and are republished on the local bus.
	var (
		meds      []*core.MonitoringEventDetector
		diagnoser *core.Diagnoser
		responder *core.Responder
	)
	if c.manifest.Adaptive {
		seen := map[simnet.NodeID]bool{}
		for _, frag := range plan.Fragments {
			for _, node := range frag.Instances {
				if !seen[node] {
					seen[node] = true
					meds = append(meds, core.NewMED(sctx, c.bus, node, core.DefaultMEDConfig()))
				}
			}
		}
		diagnoser = core.NewDiagnoser(sctx, c.bus, c.manifest.Coordinator,
			core.DiagnoserConfig{ThresA: 0.2, Assessment: c.manifest.Assessment})
		responder = core.NewResponder(sctx, c.bus, c.tr, c.manifest.Coordinator,
			core.ResponderConfig{Response: c.manifest.Response, MaxProgress: 0.9})
		responder.SetClock(c.clock)
		for _, topo := range core.TopologyOf(plan, c.manifest.Buckets) {
			diagnoser.Register(topo)
			if err := responder.Register(topo); err != nil {
				return nil, qerr.Schedule("register topology", err)
			}
		}
		c.tr.Register(c.manifest.Coordinator, monitorService, func(_ simnet.NodeID, m *transport.Message) {
			if m.Kind != transport.KindMonitor || m.Mon == nil {
				return
			}
			adapter := &core.MonitorAdapter{Bus: c.bus, Node: m.Mon.Node}
			if m.Mon.IsM2 {
				adapter.EmitM2(engine.M2Event{
					Exchange: m.Exchange, Fragment: m.Mon.Fragment, Instance: m.Mon.Instance,
					Node: m.Mon.Node, ConsumerFragment: m.Mon.ConsumerFragment,
					ConsumerInstance: m.Mon.ConsumerInstance, ConsumerNode: m.Mon.ConsumerNode,
					SendCostMs: m.Mon.SendCostMs, TupleCount: m.Mon.TupleCount,
				})
			} else {
				adapter.EmitM1(engine.M1Event{
					Fragment: m.Mon.Fragment, Instance: m.Mon.Instance, Node: m.Mon.Node,
					CostPerTupleMs: m.Mon.CostMs, WaitPerTupleMs: m.Mon.WaitMs,
					Selectivity: m.Mon.Selectivity, Produced: m.Mon.Produced,
				})
			}
		})
	}
	defer func() {
		for _, m := range meds {
			m.Stop()
		}
		if diagnoser != nil {
			diagnoser.Stop()
		}
		if responder != nil {
			responder.Stop()
		}
		if c.manifest.Adaptive {
			c.tr.Unregister(c.manifest.Coordinator, monitorService)
		}
	}()

	// Local runtimes first (the top fragment's consumers must exist before
	// remote producers start), then deploy outward.
	sink := &rowSink{ch: make(chan relation.Tuple, 4096)}
	var local []*engine.FragmentRuntime
	var localIDs []string
	defer func() {
		for _, rt := range local {
			rt.Stop()
		}
	}()
	for _, frag := range plan.Fragments {
		for i, nodeID := range frag.Instances {
			if nodeID != c.manifest.Coordinator {
				continue
			}
			ctx := &engine.ExecContext{
				Clock:       c.clock,
				Node:        c.machine,
				Meter:       vtime.NewMeter(c.clock),
				Costs:       c.manifest.Costs,
				Buckets:     c.manifest.Buckets,
				Fragment:    frag.ID,
				Instance:    i,
				Parallelism: resolveParallelism(c.manifest.Parallelism),
				Readahead:   c.manifest.ScanReadahead,
				Mem:         mem,
				Spill:       c.spill,
			}
			cfg := engine.RuntimeConfig{
				Plan: plan, Fragment: frag, Instance: i, Ctx: ctx,
				Tr: c.tr, Node: nodeID,
				BufferTuples:    c.manifest.BufferTuples,
				CheckpointEvery: c.manifest.CheckpointEvery,
			}
			if frag.Output == nil {
				cfg.Sink = sink
			}
			rt, err := engine.NewFragmentRuntime(cfg)
			if err != nil {
				return nil, qerr.Schedule("deploy "+frag.InstanceID(i), err)
			}
			local = append(local, rt)
			localIDs = append(localIDs, frag.InstanceID(i))
		}
	}

	evaluators := c.evaluatorNodes(plan)
	deployed := evaluators[:0:0]
	defer func() {
		for _, node := range deployed {
			// Teardown runs under its own deadline, not sctx: remote
			// runtimes must be reclaimed even when the query was canceled.
			_ = c.rpcWait(nil, node, gqesService, &transport.Message{Kind: transport.KindTeardown}, 10*time.Second)
		}
	}()
	for _, node := range evaluators {
		if err := c.rpcWait(sctx, node, gqesService,
			&transport.Message{Kind: transport.KindDeploy, Query: sql}, 30*time.Second); err != nil {
			return nil, err
		}
		deployed = append(deployed, node)
	}

	// First-error-wins: a failing driver cancels sctx, interrupting its
	// local siblings; context-derived errors from the interrupted drivers
	// are not new failures.
	var failMu sync.Mutex
	var firstErr error
	fail := func(op string, err error) {
		if err == nil {
			return
		}
		if !errors.Is(err, context.Canceled) && !errors.Is(err, context.DeadlineExceeded) {
			err = qerr.Exec(op, err)
		}
		failMu.Lock()
		if firstErr == nil {
			firstErr = err
		}
		failMu.Unlock()
		cancel(err)
	}
	var wg sync.WaitGroup
	for i, rt := range local {
		wg.Add(1)
		go func(id string, rt *engine.FragmentRuntime) {
			defer wg.Done()
			if err := rt.Run(sctx); err != nil {
				fail("fragment "+id, err)
			}
		}(localIDs[i], rt)
	}

	var rows []relation.Tuple
	done := make(chan struct{})
	go func() {
		defer close(done)
		for t := range sink.ch {
			rows = append(rows, t)
		}
	}()
	// The deadline lives on sctx, whose cancellation interrupts every local
	// driver, so waiting for them is bounded.
	wg.Wait()
	sinkErr := sink.Close()
	<-done

	failMu.Lock()
	execErr := firstErr
	failMu.Unlock()
	if execErr != nil {
		// Classify through the context: a deadline outranks the derived
		// cancellation errors the interrupted drivers reported.
		if err := qerr.FromContext(sctx); err != nil {
			return nil, err
		}
		return nil, execErr
	}
	if sinkErr != nil {
		return nil, qerr.Exec("result sink close", sinkErr)
	}

	stats := QueryStats{
		ResponseMs: c.clock.MsOf(time.Since(start)),
		Rows:       len(rows),
		Plan:       plan,
	}
	if responder != nil {
		rs := responder.Stats()
		stats.Adaptations = rs.Adaptations
		stats.TuplesMoved = rs.TuplesMoved
		stats.StateReplays = rs.StateReplays
		stats.Timeline = responder.Timeline()
	}
	return &QueryResult{
		Columns: plan.Top().Root.OutSchema().Columns(),
		Rows:    rows,
		Stats:   stats,
	}, nil
}
