package services

import (
	"context"
	"fmt"

	"repro/internal/qerr"
	"repro/internal/sqlparse"
)

// Stmt is a prepared statement: the query is parsed, normalized and
// template-planned once, and each Execute only binds arguments into a clone
// of the cached plan. Statements are safe for concurrent Execute and remain
// valid for the life of their coordinator (topology changes transparently
// re-plan on the next Execute).
type Stmt struct {
	g     *GDQS
	query string
	// key/template/slots are the normalized form; Execute starts from here,
	// skipping parse and normalize entirely.
	key      string
	template *sqlparse.SelectStmt
	slots    []sqlparse.Slot
	numUser  int
}

// Prepare parses and plans a query once for repeated execution. The query
// may contain explicit `?` parameter markers in WHERE/HAVING comparisons;
// their types are inferred from the columns they are compared with.
func (g *GDQS) Prepare(query string) (*Stmt, error) {
	key, template, slots, err := sqlparse.NormalizeSQL(query)
	if err != nil {
		return nil, qerr.Plan("parse", err)
	}
	// Surface planning errors now rather than on first Execute; this also
	// warms the plan cache. Parameter-free statements tolerate template
	// failures — Execute falls back to direct planning for them.
	if _, err := g.templateFor(key, template, slots); err != nil && sqlparse.NumUserParams(slots) > 0 {
		return nil, err
	}
	return &Stmt{
		g: g, query: query,
		key: key, template: template, slots: slots,
		numUser: sqlparse.NumUserParams(slots),
	}, nil
}

// Query returns the statement's original SQL text.
func (s *Stmt) Query() string { return s.query }

// NumParams reports how many `?` arguments Execute expects.
func (s *Stmt) NumParams() int { return s.numUser }

// Execute runs the prepared statement with the given arguments — one Go
// value (int/int64, float64, or string) per `?` marker, in statement order.
// Concurrency, admission and error semantics match GDQS.Execute.
func (s *Stmt) Execute(ctx context.Context, args ...any) (*QueryResult, error) {
	exprs, err := litArgs(args)
	if err != nil {
		return nil, qerr.Plan("bind", err)
	}
	return s.g.executeTemplate(ctx, s.key, s.template, s.slots, exprs)
}

// litArgs converts Go argument values to literal expressions.
func litArgs(args []any) ([]sqlparse.Expr, error) {
	if len(args) == 0 {
		return nil, nil
	}
	out := make([]sqlparse.Expr, len(args))
	for i, a := range args {
		switch v := a.(type) {
		case int:
			out[i] = sqlparse.IntLit{Value: int64(v)}
		case int32:
			out[i] = sqlparse.IntLit{Value: int64(v)}
		case int64:
			out[i] = sqlparse.IntLit{Value: v}
		case float32:
			out[i] = sqlparse.FloatLit{Value: float64(v)}
		case float64:
			out[i] = sqlparse.FloatLit{Value: v}
		case string:
			out[i] = sqlparse.StringLit{Value: v}
		case sqlparse.Expr:
			out[i] = v
		default:
			return nil, fmt.Errorf("argument %d: unsupported type %T", i, a)
		}
	}
	return out, nil
}
