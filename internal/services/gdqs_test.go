package services

import (
	"context"
	"math/rand"
	"strings"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/engine"
	"repro/internal/physical"
	"repro/internal/relation"
	"repro/internal/simnet"
	"repro/internal/vtime"
	"repro/internal/ws"
)

const (
	q1 = "select EntropyAnalyser(p.sequence) from protein_sequences p"
	q2 = "select i.ORF2 from protein_sequences p, protein_interactions i where i.ORF1=p.ORF"
)

// testGrid builds a small, fast grid: one data node, two WS nodes, a
// coordinator. Costs are scaled down so tests run in tens of milliseconds.
func testGrid(t *testing.T, adaptive bool, seqs, ints int) (*Cluster, *GDQS) {
	t.Helper()
	// 10µs per paper-ms keeps modelled time well above Linux timer slop,
	// so response-time comparisons are meaningful.
	cluster := NewCluster(ClusterConfig{
		Scale: 10 * time.Microsecond,
		Costs: engine.Costs{ScanMs: 0.5, FilterMs: 0.01, ProjectMs: 0.01,
			JoinBuildMs: 0.05, JoinProbeMs: 0.3, StartupMs: 50},
		BufferTuples:    25,
		CheckpointEvery: 25,
		Buckets:         64,
	})
	if err := cluster.AddDataNode("data1", dataset.DemoSized(seqs, ints)); err != nil {
		t.Fatal(err)
	}
	for _, n := range []simnet.NodeID{"ws0", "ws1"} {
		if err := cluster.AddComputeNode(n, 1.0,
			ws.NewRegistry(ws.Entropy{CostMs: 5}, ws.SequenceLength{})); err != nil {
			t.Fatal(err)
		}
	}
	cfg := DefaultGDQSConfig()
	cfg.Adaptive = adaptive
	cfg.QueryTimeout = 60 * time.Second
	g, err := NewGDQS(cluster, "coord", cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(cluster.Close)
	return cluster, g
}

func TestExecuteQ1Static(t *testing.T) {
	_, g := testGrid(t, false, 150, 200)
	res, err := g.Execute(context.Background(), q1)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 150 {
		t.Fatalf("rows = %d, want 150", len(res.Rows))
	}
	if len(res.Columns) != 1 || res.Columns[0].Type != relation.TFloat {
		t.Fatalf("columns = %v", res.Columns)
	}
	for _, r := range res.Rows {
		if h := r[0].AsFloat(); h <= 0 || h > 8 {
			t.Fatalf("entropy out of range: %v", h)
		}
	}
	if res.Stats.ResponseMs <= 0 {
		t.Error("no response time measured")
	}
	// Static GQESs emit no monitoring traffic.
	if res.Stats.RawEvents != 0 || res.Stats.Adaptations != 0 {
		t.Errorf("static run produced adaptivity traffic: %+v", res.Stats)
	}
}

func TestExecuteQ1Adaptive(t *testing.T) {
	_, g := testGrid(t, true, 150, 200)
	res, err := g.Execute(context.Background(), q1)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 150 {
		t.Fatalf("rows = %d, want 150", len(res.Rows))
	}
	if res.Stats.RawEvents == 0 {
		t.Error("adaptive run emitted no raw monitoring events")
	}
}

func TestExecuteQ2Correctness(t *testing.T) {
	cluster, g := testGrid(t, true, 150, 250)
	res, err := g.Execute(context.Background(), q2)
	if err != nil {
		t.Fatal(err)
	}
	store := cluster.storeOf("data1")
	seqs, _ := store.Table("protein_sequences")
	ints, _ := store.Table("protein_interactions")
	valid := make(map[string]bool)
	for _, tp := range seqs.Tuples {
		valid[tp[0].AsString()] = true
	}
	want := 0
	for _, tp := range ints.Tuples {
		if valid[tp[0].AsString()] {
			want++
		}
	}
	if len(res.Rows) != want {
		t.Fatalf("join rows = %d, want %d", len(res.Rows), want)
	}
}

func TestAdaptiveRebalancesUnderPerturbation(t *testing.T) {
	// The headline behaviour: with one WS 10x costlier, the adaptive system
	// shifts work to the fast machine and beats the static run.
	staticCluster, staticG := testGrid(t, false, 300, 100)
	staticCluster.Node("ws1").SetPerturbation(vtime.Multiplier(10))
	staticRes, err := staticG.Execute(context.Background(), q1)
	if err != nil {
		t.Fatal(err)
	}

	// Retrospective response: with a fast data source, everything is
	// distributed before the imbalance is detected, so only R1 (recalling
	// the slow machine's queue) can rebalance — the paper's motivation for
	// state/log repartitioning.
	adCluster, _ := testGrid(t, true, 300, 100)
	adCluster.Node("ws1").SetPerturbation(vtime.Multiplier(10))
	cfg := DefaultGDQSConfig()
	cfg.Responder.Response = core.R1
	cfg.QueryTimeout = 60 * time.Second
	adG, err := NewGDQS(adCluster, "coordR1", cfg)
	if err != nil {
		t.Fatal(err)
	}
	adRes, err := adG.Execute(context.Background(), q1)
	if err != nil {
		t.Fatal(err)
	}
	if len(adRes.Rows) != 300 || len(staticRes.Rows) != 300 {
		t.Fatalf("row counts: ad %d static %d", len(adRes.Rows), len(staticRes.Rows))
	}
	if adRes.Stats.Adaptations == 0 {
		t.Fatalf("no adaptation happened: %+v", adRes.Stats)
	}
	// The fast instance must consume clearly more than the slow one.
	var fast, slow int64
	for _, frag := range adRes.Stats.Plan.Fragments {
		if frag.Partitioned {
			fast = adRes.Stats.ConsumedByInstance[frag.InstanceID(0)]
			slow = adRes.Stats.ConsumedByInstance[frag.InstanceID(1)]
		}
	}
	if fast <= slow {
		t.Errorf("consumption not rebalanced: fast=%d slow=%d", fast, slow)
	}
	if adRes.Stats.ResponseMs >= 0.9*staticRes.Stats.ResponseMs {
		t.Errorf("adaptive (%v ms) not faster than static (%v ms) under perturbation",
			adRes.Stats.ResponseMs, staticRes.Stats.ResponseMs)
	}
}

func TestAdaptiveQ2Retrospective(t *testing.T) {
	// A perturbed join instance must trigger a stateful (R1) rebalance and
	// still produce the correct result.
	cluster, g := testGrid(t, true, 150, 600)
	cluster.Node("ws1").SetPerturbation(vtime.Sleep(3))
	res, err := g.Execute(context.Background(), q2)
	if err != nil {
		t.Fatal(err)
	}
	store := cluster.storeOf("data1")
	seqs, _ := store.Table("protein_sequences")
	valid := make(map[string]bool)
	for _, tp := range seqs.Tuples {
		valid[tp[0].AsString()] = true
	}
	ints, _ := store.Table("protein_interactions")
	want := 0
	for _, tp := range ints.Tuples {
		if valid[tp[0].AsString()] {
			want++
		}
	}
	if len(res.Rows) != want {
		t.Fatalf("join rows = %d, want %d (adaptation corrupted results)", len(res.Rows), want)
	}
}

func TestExecuteErrors(t *testing.T) {
	_, g := testGrid(t, false, 50, 50)
	for _, q := range []string{
		"not sql at all",
		"select nope from protein_sequences",
		"select * from missing",
	} {
		if _, err := g.Execute(context.Background(), q); err == nil {
			t.Errorf("Execute(%q): expected error", q)
		}
	}
}

func TestExplain(t *testing.T) {
	_, g := testGrid(t, false, 50, 50)
	out, err := g.Explain(q2)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"HashJoin", "fragment", "stateful"} {
		if !strings.Contains(out, want) {
			t.Errorf("Explain missing %q:\n%s", want, out)
		}
	}
}

func TestMonitorFrequencyZeroDisablesMonitoring(t *testing.T) {
	cluster, _ := testGrid(t, true, 100, 50)
	cfg := DefaultGDQSConfig()
	cfg.MonitorEvery = 0
	cfg.QueryTimeout = 60 * time.Second
	g, err := NewGDQS(cluster, "coord2", cfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := g.Execute(context.Background(), q1)
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.RawEvents != 0 {
		t.Errorf("monitoring frequency 0 still produced %d events", res.Stats.RawEvents)
	}
}

func TestClusterValidation(t *testing.T) {
	cluster := NewCluster(ClusterConfig{Scale: time.Microsecond})
	if err := cluster.AddComputeNode("c1", 0, nil); err == nil {
		t.Error("zero speed accepted")
	}
	if cluster.storeOf("nope") != nil || cluster.servicesOf("nope") != nil {
		t.Error("lookup of unknown node")
	}
}

func TestExecuteGroupByAggregation(t *testing.T) {
	cluster, g := testGrid(t, false, 150, 400)
	res, err := g.Execute(context.Background(), "select i.ORF1, count(*) AS n from protein_interactions i group by i.ORF1 order by n desc, i.ORF1 limit 10")
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 10 {
		t.Fatalf("rows = %d, want 10", len(res.Rows))
	}
	// Verify against a reference aggregation.
	store := cluster.storeOf("data1")
	ints, _ := store.Table("protein_interactions")
	counts := map[string]int64{}
	for _, tp := range ints.Tuples {
		counts[tp[0].AsString()]++
	}
	// Rows must be sorted by count desc then key asc, and match reference.
	var prev int64 = 1 << 62
	var prevKey string
	for _, row := range res.Rows {
		k, n := row[0].AsString(), row[1].AsInt()
		if counts[k] != n {
			t.Fatalf("group %q: count %d, want %d", k, n, counts[k])
		}
		if n > prev || (n == prev && k < prevKey) {
			t.Fatalf("rows not sorted: %q:%d after %q:%d", k, n, prevKey, prev)
		}
		prev, prevKey = n, k
	}
}

func TestExecuteGlobalAggregate(t *testing.T) {
	_, g := testGrid(t, false, 123, 77)
	res, err := g.Execute(context.Background(), "select count(*) AS total, min(i.ORF1) AS lo from protein_interactions i")
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 1 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	if res.Rows[0][0].AsInt() != 77 {
		t.Fatalf("count = %v, want 77", res.Rows[0][0])
	}
	if res.Rows[0][1].Type() != relation.TString {
		t.Fatalf("min type = %v", res.Rows[0][1].Type())
	}
}

func TestAdaptiveAggregationCorrectUnderRebalance(t *testing.T) {
	// The aggregate is the engine's second stateful operator: perturb one
	// instance so the Responder repartitions group state mid-query, then
	// verify counts are neither lost nor duplicated.
	cluster, _ := testGrid(t, true, 150, 1200)
	cluster.Node("ws1").SetPerturbation(vtime.Sleep(2))
	cfg := DefaultGDQSConfig()
	cfg.Responder.Response = core.R1
	cfg.QueryTimeout = 60 * time.Second
	g, err := NewGDQS(cluster, "coordAgg", cfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := g.Execute(context.Background(), "select i.ORF1, count(*) AS n from protein_interactions i group by i.ORF1")
	if err != nil {
		t.Fatal(err)
	}
	store := cluster.storeOf("data1")
	ints, _ := store.Table("protein_interactions")
	counts := map[string]int64{}
	for _, tp := range ints.Tuples {
		counts[tp[0].AsString()]++
	}
	if len(res.Rows) != len(counts) {
		t.Fatalf("groups = %d, want %d", len(res.Rows), len(counts))
	}
	var total int64
	for _, row := range res.Rows {
		k, n := row[0].AsString(), row[1].AsInt()
		if counts[k] != n {
			t.Fatalf("group %q: count %d, want %d (state repartitioning corrupted the aggregate)", k, n, counts[k])
		}
		total += n
	}
	if total != 1200 {
		t.Fatalf("total = %d, want 1200", total)
	}
}

func TestExecuteOrderByLimitPlain(t *testing.T) {
	_, g := testGrid(t, false, 60, 40)
	res, err := g.Execute(context.Background(), "select p.ORF from protein_sequences p order by p.ORF desc limit 3")
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 3 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	if res.Rows[0][0].AsString() != "YAL00059C" || res.Rows[2][0].AsString() != "YAL00057C" {
		t.Fatalf("order: %v %v %v", res.Rows[0].Format(), res.Rows[1].Format(), res.Rows[2].Format())
	}
}

func TestRandomPerturbationsNeverCorruptResults(t *testing.T) {
	// Property-style sweep: across random perturbation shapes, policies and
	// both queries, the adaptive system must deliver exactly the static
	// reference result — no loss, no duplication — regardless of when and
	// how the Responder rebalances.
	if testing.Short() {
		t.Skip("sweep takes a few seconds")
	}
	rng := rand.New(rand.NewSource(20260705))
	perturbations := []func() vtime.Perturbation{
		func() vtime.Perturbation { return vtime.Multiplier(float64(2 + rng.Intn(40))) },
		func() vtime.Perturbation { return vtime.Sleep(float64(1 + rng.Intn(20))) },
		func() vtime.Perturbation { return vtime.NewNormalMultiplier(1, float64(10+rng.Intn(50)), rng.Int63()) },
		func() vtime.Perturbation {
			return vtime.Step{At: rng.Intn(200), Before: vtime.None,
				After: vtime.Multiplier(float64(5 + rng.Intn(25)))}
		},
	}
	queries := []struct {
		sql      string
		wantRows int
	}{
		{q1, 120},
		{q2, 200},
		{"select i.ORF1, count(*) AS n from protein_interactions i group by i.ORF1 order by i.ORF1", -1},
	}
	for trial := 0; trial < 8; trial++ {
		q := queries[trial%len(queries)]
		response := core.R2
		if trial%2 == 0 {
			response = core.R1
		}
		cluster, _ := testGrid(t, true, 120, 200)
		node := []string{"ws0", "ws1"}[rng.Intn(2)]
		pert := perturbations[rng.Intn(len(perturbations))]()
		cluster.Node(simnet.NodeID(node)).SetPerturbation(pert)
		cfg := DefaultGDQSConfig()
		cfg.Responder.Response = response
		// Generous: `go test -race ./...` runs packages in parallel and the
		// simulated testbed runs on real time, so heavy machine load
		// stretches wall-clock response times.
		cfg.QueryTimeout = 5 * time.Minute
		g, err := NewGDQS(cluster, "coordRnd", cfg)
		if err != nil {
			t.Fatal(err)
		}
		res, err := g.Execute(context.Background(), q.sql)
		if err != nil {
			t.Fatalf("trial %d (%s on %s, %v): %v", trial, q.sql[:20], node, pert, err)
		}
		if q.wantRows >= 0 && len(res.Rows) != q.wantRows {
			t.Fatalf("trial %d (%s, %v): rows = %d, want %d",
				trial, response, pert, len(res.Rows), q.wantRows)
		}
		if q.wantRows < 0 {
			// Aggregation: totals must account for every input tuple.
			var total int64
			for _, row := range res.Rows {
				total += row[1].AsInt()
			}
			if total != 200 {
				t.Fatalf("trial %d (%v): aggregate total = %d, want 200", trial, pert, total)
			}
		}
	}
}

func TestStepPerturbationMidQuery(t *testing.T) {
	// The motivating scenario: a machine that is fine at first and slows
	// down mid-query. The step perturbation kicks in after 150 work units;
	// the adaptive system must detect the change and still finish with the
	// full result.
	cluster, _ := testGrid(t, true, 500, 100)
	cluster.Node("ws1").SetPerturbation(vtime.Step{
		At: 150, Before: vtime.None, After: vtime.Multiplier(30),
	})
	cfg := DefaultGDQSConfig()
	cfg.Responder.Response = core.R1
	cfg.QueryTimeout = 5 * time.Minute
	g, err := NewGDQS(cluster, "coordStep", cfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := g.Execute(context.Background(), q1)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 500 {
		t.Fatalf("rows = %d, want 500", len(res.Rows))
	}
	if res.Stats.Adaptations == 0 {
		t.Fatalf("mid-query slowdown never triggered adaptation: %+v", res.Stats)
	}
}

func TestExecuteHaving(t *testing.T) {
	cluster, g := testGrid(t, false, 150, 500)
	res, err := g.Execute(context.Background(), "select i.ORF1, count(*) AS n from protein_interactions i group by i.ORF1 having count(*) >= 5 order by n desc, i.ORF1")
	if err != nil {
		t.Fatal(err)
	}
	store := cluster.storeOf("data1")
	ints, _ := store.Table("protein_interactions")
	counts := map[string]int64{}
	for _, tp := range ints.Tuples {
		counts[tp[0].AsString()]++
	}
	want := 0
	for _, n := range counts {
		if n >= 5 {
			want++
		}
	}
	if len(res.Rows) != want {
		t.Fatalf("rows = %d, want %d", len(res.Rows), want)
	}
	for _, row := range res.Rows {
		if row[1].AsInt() < 5 {
			t.Fatalf("HAVING leaked group %s", row.Format())
		}
		if counts[row[0].AsString()] != row[1].AsInt() {
			t.Fatalf("wrong count for %s", row.Format())
		}
	}
	// Hidden HAVING column must not appear in the output.
	if len(res.Columns) != 2 {
		t.Fatalf("columns = %v", res.Columns)
	}
}

func TestConcurrentQueriesShareOneGrid(t *testing.T) {
	// Two coordinators fire different queries at the same cluster
	// simultaneously; query-tagged plans keep their fragments, exchanges
	// and adaptivity topologies fully isolated.
	cluster, g1 := testGrid(t, true, 200, 300)
	cfg := DefaultGDQSConfig()
	cfg.QueryTimeout = 5 * time.Minute
	g2, err := NewGDQS(cluster, "coord2", cfg)
	if err != nil {
		t.Fatal(err)
	}
	cluster.Node("ws1").SetPerturbation(vtime.Multiplier(5))

	type outcome struct {
		rows int
		err  error
	}
	res1 := make(chan outcome, 1)
	res2 := make(chan outcome, 1)
	go func() {
		r, err := g1.Execute(context.Background(), q1)
		if err != nil {
			res1 <- outcome{err: err}
			return
		}
		res1 <- outcome{rows: len(r.Rows)}
	}()
	go func() {
		r, err := g2.Execute(context.Background(), q2)
		if err != nil {
			res2 <- outcome{err: err}
			return
		}
		res2 <- outcome{rows: len(r.Rows)}
	}()
	o1, o2 := <-res1, <-res2
	if o1.err != nil {
		t.Fatalf("q1: %v", o1.err)
	}
	if o2.err != nil {
		t.Fatalf("q2: %v", o2.err)
	}
	if o1.rows != 200 {
		t.Errorf("q1 rows = %d, want 200", o1.rows)
	}
	if o2.rows != 300 {
		t.Errorf("q2 rows = %d, want 300", o2.rows)
	}
}

func TestPlanValidateOnExecute(t *testing.T) {
	// Every scheduled plan must pass validation; exercise it through the
	// public path on all supported query shapes.
	_, g := testGrid(t, false, 40, 60)
	for _, q := range []string{
		q1, q2,
		"select * from protein_sequences",
		"select count(*) from protein_sequences",
		"select i.ORF1, count(*) n from protein_interactions i group by i.ORF1 having count(*) > 1 order by n limit 3",
	} {
		if _, err := g.Execute(context.Background(), q); err != nil {
			t.Errorf("Execute(%q): %v", q, err)
		}
	}
}

func TestSkewedAggregationUnderRebalance(t *testing.T) {
	// Zipf-skewed groups concentrate state in few buckets; moving those
	// buckets moves most of the aggregate's state. Correctness must hold.
	cluster := NewCluster(ClusterConfig{
		Scale: 10 * time.Microsecond,
		Costs: engine.Costs{ScanMs: 0.5, AggMs: 1, ProjectMs: 0.01, SortMs: 0.05, StartupMs: 50},
	})
	t.Cleanup(cluster.Close)
	store := dataset.NewStore()
	store.Add(dataset.ProteinSequences(50, 1))
	store.Add(dataset.ProteinInteractionsZipf(2000, 300, 1.4, 7))
	if err := cluster.AddDataNode("data1", store); err != nil {
		t.Fatal(err)
	}
	for _, n := range []simnet.NodeID{"ws0", "ws1"} {
		if err := cluster.AddComputeNode(n, 1.0, ws.NewRegistry(ws.Entropy{})); err != nil {
			t.Fatal(err)
		}
	}
	cluster.Node("ws0").SetPerturbation(vtime.Multiplier(12))
	cfg := DefaultGDQSConfig()
	cfg.Responder.Response = core.R1
	cfg.QueryTimeout = 5 * time.Minute
	g, err := NewGDQS(cluster, "coord", cfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := g.Execute(context.Background(), "select i.ORF1, count(*) AS n from protein_interactions i group by i.ORF1")
	if err != nil {
		t.Fatal(err)
	}
	tbl, _ := store.Table("protein_interactions")
	want := map[string]int64{}
	for _, tp := range tbl.Tuples {
		want[tp[0].AsString()]++
	}
	if len(res.Rows) != len(want) {
		t.Fatalf("groups = %d, want %d", len(res.Rows), len(want))
	}
	for _, row := range res.Rows {
		if want[row[0].AsString()] != row[1].AsInt() {
			t.Fatalf("group %s wrong under skewed rebalance", row.Format())
		}
	}
}

func TestJoinFeedingAggregation(t *testing.T) {
	// Join and aggregation compose: two chained stateful partitioned
	// fragments, each hash-partitioned on its own keys, both adaptable.
	cluster, g := testGrid(t, true, 100, 400)
	cluster.Node("ws1").SetPerturbation(vtime.Multiplier(8))
	res, err := g.Execute(context.Background(), "select p.ORF, count(*) AS n from protein_sequences p, protein_interactions i where i.ORF1 = p.ORF group by p.ORF order by n desc, p.ORF limit 5")
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 5 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	// Reference: count interactions per ORF.
	store := cluster.storeOf("data1")
	ints, _ := store.Table("protein_interactions")
	counts := map[string]int64{}
	for _, tp := range ints.Tuples {
		counts[tp[0].AsString()]++
	}
	for _, row := range res.Rows {
		if counts[row[0].AsString()] != row[1].AsInt() {
			t.Fatalf("group %s: got %v, want %d", row[0].Format(), row[1].Format(), counts[row[0].AsString()])
		}
	}
	// The plan must contain two partitioned fragments (join + aggregate).
	partitioned := 0
	for _, f := range res.Stats.Plan.Fragments {
		if f.Partitioned {
			partitioned++
		}
	}
	if partitioned != 2 {
		t.Fatalf("partitioned fragments = %d, want 2:\n%s", partitioned, res.Stats.Plan.Explain())
	}
}

func TestTablesOnSeparateDataNodes(t *testing.T) {
	// Q2 with its two tables hosted by different Grid Data Services: the
	// scheduler must place each scan on its own machine.
	cluster := NewCluster(ClusterConfig{
		Scale: 5 * time.Microsecond,
		Costs: engine.Costs{ScanMs: 0.5, JoinBuildMs: 0.05, JoinProbeMs: 0.3, ProjectMs: 0.01, StartupMs: 50},
	})
	t.Cleanup(cluster.Close)
	s1 := dataset.NewStore()
	s1.Add(dataset.ProteinSequences(80, 1))
	s2 := dataset.NewStore()
	s2.Add(dataset.ProteinInteractions(150, 80, 1))
	if err := cluster.AddDataNode("data1", s1); err != nil {
		t.Fatal(err)
	}
	if err := cluster.AddDataNode("data2", s2); err != nil {
		t.Fatal(err)
	}
	for _, n := range []simnet.NodeID{"ws0", "ws1"} {
		if err := cluster.AddComputeNode(n, 1.0, ws.NewRegistry(ws.Entropy{})); err != nil {
			t.Fatal(err)
		}
	}
	cfg := DefaultGDQSConfig()
	cfg.Adaptive = false
	cfg.QueryTimeout = time.Minute
	g, err := NewGDQS(cluster, "coord", cfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := g.Execute(context.Background(), q2)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 150 {
		t.Fatalf("rows = %d, want 150", len(res.Rows))
	}
	// Scans must sit on their hosting nodes.
	nodes := map[simnet.NodeID]bool{}
	for _, f := range res.Stats.Plan.Fragments {
		if f.Root.Kind == physical.KScan {
			nodes[f.Instances[0]] = true
		}
	}
	if !nodes["data1"] || !nodes["data2"] {
		t.Fatalf("scan placement: %v\n%s", nodes, res.Stats.Plan.Explain())
	}
}

// parallelGDQS builds a coordinator over an existing test cluster with the
// morsel worker pool enabled.
func parallelGDQS(t *testing.T, cluster *Cluster, node simnet.NodeID, workers int, mutate func(*GDQSConfig)) *GDQS {
	t.Helper()
	cfg := DefaultGDQSConfig()
	cfg.QueryTimeout = 60 * time.Second
	cfg.Parallelism = workers
	if mutate != nil {
		mutate(&cfg)
	}
	g, err := NewGDQS(cluster, node, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func TestParallelismQ2Correctness(t *testing.T) {
	// End-to-end Q2 with every parallel-eligible fragment on a 2-worker
	// morsel pool: the join result must match the reference exactly.
	cluster, _ := testGrid(t, true, 150, 250)
	g := parallelGDQS(t, cluster, "coordPar", 2, nil)
	res, err := g.Execute(context.Background(), q2)
	if err != nil {
		t.Fatal(err)
	}
	store := cluster.storeOf("data1")
	seqs, _ := store.Table("protein_sequences")
	valid := make(map[string]bool)
	for _, tp := range seqs.Tuples {
		valid[tp[0].AsString()] = true
	}
	ints, _ := store.Table("protein_interactions")
	want := 0
	for _, tp := range ints.Tuples {
		if valid[tp[0].AsString()] {
			want++
		}
	}
	if len(res.Rows) != want {
		t.Fatalf("join rows = %d, want %d", len(res.Rows), want)
	}
}

func TestParallelismAdaptiveQ2Retrospective(t *testing.T) {
	// A perturbed parallel join instance must survive a retrospective (R1)
	// state repartitioning mid-query: pool workers share the partitioned
	// join state the Responder evicts and replays.
	cluster, _ := testGrid(t, true, 150, 600)
	cluster.Node("ws1").SetPerturbation(vtime.Sleep(3))
	g := parallelGDQS(t, cluster, "coordParR1", 2, func(cfg *GDQSConfig) {
		cfg.Responder.Response = core.R1
	})
	res, err := g.Execute(context.Background(), q2)
	if err != nil {
		t.Fatal(err)
	}
	store := cluster.storeOf("data1")
	seqs, _ := store.Table("protein_sequences")
	valid := make(map[string]bool)
	for _, tp := range seqs.Tuples {
		valid[tp[0].AsString()] = true
	}
	ints, _ := store.Table("protein_interactions")
	want := 0
	for _, tp := range ints.Tuples {
		if valid[tp[0].AsString()] {
			want++
		}
	}
	if len(res.Rows) != want {
		t.Fatalf("join rows = %d, want %d (adaptation corrupted parallel results)", len(res.Rows), want)
	}
}

func TestParallelismAggregationUnderRebalance(t *testing.T) {
	// Grouped aggregation with per-worker partial states, merged at the
	// drain barrier, while the Responder repartitions group state.
	cluster, _ := testGrid(t, true, 150, 1200)
	cluster.Node("ws1").SetPerturbation(vtime.Sleep(2))
	g := parallelGDQS(t, cluster, "coordParAgg", 2, func(cfg *GDQSConfig) {
		cfg.Responder.Response = core.R1
	})
	res, err := g.Execute(context.Background(), "select i.ORF1, count(*) AS n from protein_interactions i group by i.ORF1")
	if err != nil {
		t.Fatal(err)
	}
	store := cluster.storeOf("data1")
	ints, _ := store.Table("protein_interactions")
	counts := map[string]int64{}
	for _, tp := range ints.Tuples {
		counts[tp[0].AsString()]++
	}
	if len(res.Rows) != len(counts) {
		t.Fatalf("groups = %d, want %d", len(res.Rows), len(counts))
	}
	var total int64
	for _, row := range res.Rows {
		k, n := row[0].AsString(), row[1].AsInt()
		if counts[k] != n {
			t.Fatalf("group %q: count %d, want %d (parallel partial merge corrupted the aggregate)", k, n, counts[k])
		}
		total += n
	}
	if total != 1200 {
		t.Fatalf("total = %d, want 1200", total)
	}
}
