// Package scalar provides compiled scalar expressions and predicates over
// tuples. The logical planner type-checks query expressions against schemas
// and lowers them to these forms; the engine evaluates them per tuple with
// no name resolution on the hot path.
package scalar

import (
	"fmt"

	"repro/internal/relation"
)

// Expr is a compiled scalar expression.
type Expr interface {
	// Type is the statically known result type.
	Type() relation.Type
	// Eval computes the expression over one input tuple.
	Eval(t relation.Tuple) relation.Value
	// String renders the expression for plan explanations.
	String() string
}

// col references an input column by ordinal.
type col struct {
	ord  int
	typ  relation.Type
	name string
}

// Col returns an expression reading the column at the given ordinal. The
// name is used only for display.
func Col(ord int, typ relation.Type, name string) Expr {
	return col{ord: ord, typ: typ, name: name}
}

func (c col) Type() relation.Type                  { return c.typ }
func (c col) Eval(t relation.Tuple) relation.Value { return t[c.ord] }
func (c col) String() string {
	if c.name != "" {
		return c.name
	}
	return fmt.Sprintf("$%d", c.ord)
}

// constant wraps a literal value.
type constant struct{ v relation.Value }

// Const returns a constant expression.
func Const(v relation.Value) Expr { return constant{v: v} }

func (c constant) Type() relation.Type                { return c.v.Type() }
func (c constant) Eval(relation.Tuple) relation.Value { return c.v }
func (c constant) String() string                     { return c.v.Format() }

// Op enumerates comparison operators for predicates.
type Op uint8

// Comparison operators.
const (
	Eq Op = iota + 1
	Ne
	Lt
	Le
	Gt
	Ge
)

// String renders the operator.
func (o Op) String() string {
	switch o {
	case Eq:
		return "="
	case Ne:
		return "<>"
	case Lt:
		return "<"
	case Le:
		return "<="
	case Gt:
		return ">"
	case Ge:
		return ">="
	default:
		return fmt.Sprintf("Op(%d)", uint8(o))
	}
}

// Predicate is a compiled boolean filter over tuples.
type Predicate interface {
	Matches(t relation.Tuple) bool
	String() string
}

// comparison applies an operator to two sub-expressions.
type comparison struct {
	left, right Expr
	op          Op
}

// Compare builds a type-checked comparison predicate. String operands may
// only meet string operands; numeric types mix freely. The dominant shape —
// column <op> literal — compiles to a specialized predicate with the operand
// evaluation resolved at build time, since the engine's filter loop runs it
// once per tuple and the two interface dispatches (each copying a Value out)
// are measurable there.
func Compare(left Expr, op Op, right Expr) (Predicate, error) {
	if op < Eq || op > Ge {
		return nil, fmt.Errorf("scalar: invalid operator %v", op)
	}
	ls, rs := left.Type() == relation.TString, right.Type() == relation.TString
	if ls != rs {
		return nil, fmt.Errorf("scalar: cannot compare %v with %v in %s %s %s",
			left.Type(), right.Type(), left, op, right)
	}
	if l, ok := left.(col); ok {
		if r, ok := right.(constant); ok {
			if l.typ == relation.TInt && r.v.Type() == relation.TInt {
				return colConstInt{col: l, v: r.v, i: r.v.AsInt(), op: op}, nil
			}
			return colConst{col: l, v: r.v, op: op}, nil
		}
	}
	return comparison{left: left, right: right, op: op}, nil
}

// colConstInt further specializes "int column <op> int literal": when the
// runtime value is indeed TInt the comparison is a machine compare, with no
// Value copies or float conversions. Other runtime types (schemas are advice,
// not proof) fall back to the generic path.
type colConstInt struct {
	col col
	v   relation.Value
	i   int64
	op  Op
}

func (c colConstInt) Matches(t relation.Tuple) bool {
	l := &t[c.col.ord]
	if l.Type() != relation.TInt {
		return colConst{col: c.col, v: c.v, op: c.op}.Matches(t)
	}
	li := l.AsInt()
	switch c.op {
	case Eq:
		return li == c.i
	case Ne:
		return li != c.i
	case Lt:
		return li < c.i
	case Le:
		return li <= c.i
	case Gt:
		return li > c.i
	case Ge:
		return li >= c.i
	}
	return false
}

func (c colConstInt) String() string {
	return fmt.Sprintf("%s %s %s", c.col, c.op, constant{v: c.v})
}

// colConst is the compiled form of "column <op> literal".
type colConst struct {
	col col
	v   relation.Value
	op  Op
}

func (c colConst) Matches(t relation.Tuple) bool {
	l := t[c.col.ord]
	if l.IsNull() || c.v.IsNull() {
		return false
	}
	switch c.op {
	case Eq:
		return l.Equal(c.v)
	case Ne:
		return !l.Equal(c.v)
	}
	cmp := l.Compare(c.v)
	switch c.op {
	case Lt:
		return cmp < 0
	case Le:
		return cmp <= 0
	case Gt:
		return cmp > 0
	case Ge:
		return cmp >= 0
	}
	return false
}

func (c colConst) String() string {
	return fmt.Sprintf("%s %s %s", c.col, c.op, constant{v: c.v})
}

func (c comparison) Matches(t relation.Tuple) bool {
	l, r := c.left.Eval(t), c.right.Eval(t)
	// SQL three-valued logic: a comparison with NULL is not true.
	if l.IsNull() || r.IsNull() {
		return false
	}
	switch c.op {
	case Eq:
		return l.Equal(r)
	case Ne:
		return !l.Equal(r)
	}
	cmp := l.Compare(r)
	switch c.op {
	case Lt:
		return cmp < 0
	case Le:
		return cmp <= 0
	case Gt:
		return cmp > 0
	case Ge:
		return cmp >= 0
	}
	return false
}

func (c comparison) String() string {
	return fmt.Sprintf("%s %s %s", c.left, c.op, c.right)
}

// And conjoins predicates; And() is the always-true predicate.
func And(preds ...Predicate) Predicate {
	if len(preds) == 1 {
		return preds[0]
	}
	return conjunction(preds)
}

type conjunction []Predicate

func (c conjunction) Matches(t relation.Tuple) bool {
	for _, p := range c {
		if !p.Matches(t) {
			return false
		}
	}
	return true
}

func (c conjunction) String() string {
	if len(c) == 0 {
		return "true"
	}
	s := c[0].String()
	for _, p := range c[1:] {
		s += " AND " + p.String()
	}
	return s
}
