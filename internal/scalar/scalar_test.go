package scalar

import (
	"testing"
	"testing/quick"

	"repro/internal/relation"
)

func TestColAndConst(t *testing.T) {
	tp := relation.Tuple{relation.Int(5), relation.String("x")}
	c := Col(1, relation.TString, "t.name")
	if got := c.Eval(tp); got.AsString() != "x" {
		t.Errorf("Col eval = %v", got)
	}
	if c.Type() != relation.TString || c.String() != "t.name" {
		t.Error("Col metadata")
	}
	if Col(0, relation.TInt, "").String() != "$0" {
		t.Error("anonymous col display")
	}
	k := Const(relation.Int(9))
	if k.Eval(tp).AsInt() != 9 || k.Type() != relation.TInt || k.String() != "9" {
		t.Error("Const")
	}
}

func TestCompareTypeChecking(t *testing.T) {
	i := Col(0, relation.TInt, "a")
	s := Col(1, relation.TString, "b")
	f := Const(relation.Float(1.5))
	if _, err := Compare(i, Eq, s); err == nil {
		t.Error("int vs string must be rejected")
	}
	if _, err := Compare(i, Lt, f); err != nil {
		t.Errorf("int vs float should be fine: %v", err)
	}
	if _, err := Compare(i, Op(99), i); err == nil {
		t.Error("bad operator must be rejected")
	}
}

func TestComparisonSemantics(t *testing.T) {
	a := Col(0, relation.TInt, "a")
	b := Col(1, relation.TInt, "b")
	tests := []struct {
		op   Op
		x, y int64
		want bool
	}{
		{Eq, 3, 3, true}, {Eq, 3, 4, false},
		{Ne, 3, 4, true}, {Ne, 3, 3, false},
		{Lt, 3, 4, true}, {Lt, 4, 3, false}, {Lt, 3, 3, false},
		{Le, 3, 3, true}, {Le, 4, 3, false},
		{Gt, 4, 3, true}, {Gt, 3, 3, false},
		{Ge, 3, 3, true}, {Ge, 2, 3, false},
	}
	for _, tc := range tests {
		p, err := Compare(a, tc.op, b)
		if err != nil {
			t.Fatal(err)
		}
		tp := relation.Tuple{relation.Int(tc.x), relation.Int(tc.y)}
		if got := p.Matches(tp); got != tc.want {
			t.Errorf("%d %v %d = %v, want %v", tc.x, tc.op, tc.y, got, tc.want)
		}
	}
}

func TestComparisonNullIsNotTrue(t *testing.T) {
	a := Col(0, relation.TInt, "a")
	for _, op := range []Op{Eq, Ne, Lt, Le, Gt, Ge} {
		p, err := Compare(a, op, Const(relation.Int(1)))
		if err != nil {
			t.Fatal(err)
		}
		if p.Matches(relation.Tuple{relation.Null}) {
			t.Errorf("NULL %v 1 must not match", op)
		}
	}
}

func TestStringComparison(t *testing.T) {
	p, err := Compare(Col(0, relation.TString, "s"), Lt, Const(relation.String("m")))
	if err != nil {
		t.Fatal(err)
	}
	if !p.Matches(relation.Tuple{relation.String("a")}) || p.Matches(relation.Tuple{relation.String("z")}) {
		t.Error("string ordering")
	}
}

func TestAnd(t *testing.T) {
	a := Col(0, relation.TInt, "a")
	p1, _ := Compare(a, Gt, Const(relation.Int(0)))
	p2, _ := Compare(a, Lt, Const(relation.Int(10)))
	all := And(p1, p2)
	if !all.Matches(relation.Tuple{relation.Int(5)}) {
		t.Error("5 in (0,10)")
	}
	if all.Matches(relation.Tuple{relation.Int(11)}) {
		t.Error("11 not in (0,10)")
	}
	if And(p1) != p1 {
		t.Error("single-predicate And should be identity")
	}
	empty := And()
	if !empty.Matches(relation.Tuple{relation.Int(-5)}) {
		t.Error("empty And must be true")
	}
	if empty.String() != "true" {
		t.Errorf("empty And String = %q", empty.String())
	}
	if all.String() != "a > 0 AND a < 10" {
		t.Errorf("And String = %q", all.String())
	}
}

func TestEqNeAreDuals(t *testing.T) {
	a := Col(0, relation.TInt, "a")
	b := Col(1, relation.TInt, "b")
	eq, _ := Compare(a, Eq, b)
	ne, _ := Compare(a, Ne, b)
	prop := func(x, y int16) bool {
		tp := relation.Tuple{relation.Int(int64(x)), relation.Int(int64(y))}
		return eq.Matches(tp) != ne.Matches(tp)
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Error(err)
	}
}

func TestOpString(t *testing.T) {
	wants := map[Op]string{Eq: "=", Ne: "<>", Lt: "<", Le: "<=", Gt: ">", Ge: ">="}
	for op, want := range wants {
		if op.String() != want {
			t.Errorf("%d.String() = %q, want %q", op, op.String(), want)
		}
	}
}
