// Package catalog implements the metadata catalog the GDQS maintains
// (paper §2): schemas and statistics for the tables reachable through Grid
// Data Services, and signatures plus cost estimates for the Web Service
// operations that queries may invoke as typed foreign functions.
package catalog

import (
	"fmt"
	"strings"
	"sync"

	"repro/internal/relation"
	"repro/internal/simnet"
)

// TableMeta records what the optimiser knows about one table.
type TableMeta struct {
	Name        string
	Schema      *relation.Schema
	Cardinality int
	// AvgTupleBytes is the mean wire size of a tuple; the cost model uses
	// it to estimate buffer transmission costs.
	AvgTupleBytes int
	// TotalBytes is the table's encoded volume (Cardinality ×
	// AvgTupleBytes, exact for generator-written stored tables). It lets
	// planners and operators reason about scan volume against memory
	// budgets without touching the data.
	TotalBytes int64
	// Node is the data resource hosting the table.
	Node simnet.NodeID
}

// FunctionMeta records the signature and cost estimate of a Web Service
// operation callable from queries, such as EntropyAnalyser.
type FunctionMeta struct {
	Name string
	// ArgTypes are the expected argument types, positionally.
	ArgTypes []relation.Type
	// ResultType is the type of the operation's result column.
	ResultType relation.Type
	// CostMs is the estimated invocation cost per tuple in paper ms.
	CostMs float64
}

// Catalog is a thread-safe metadata store.
type Catalog struct {
	mu     sync.RWMutex
	tables map[string]TableMeta
	funcs  map[string]FunctionMeta
}

// New returns an empty catalog.
func New() *Catalog {
	return &Catalog{
		tables: make(map[string]TableMeta),
		funcs:  make(map[string]FunctionMeta),
	}
}

// PutTable registers or replaces table metadata. The name is
// case-insensitive.
func (c *Catalog) PutTable(m TableMeta) error {
	if m.Name == "" || m.Schema == nil {
		return fmt.Errorf("catalog: table metadata missing name or schema")
	}
	c.mu.Lock()
	c.tables[strings.ToLower(m.Name)] = m
	c.mu.Unlock()
	return nil
}

// Table looks up table metadata by case-insensitive name.
func (c *Catalog) Table(name string) (TableMeta, error) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	m, ok := c.tables[strings.ToLower(name)]
	if !ok {
		return TableMeta{}, fmt.Errorf("catalog: unknown table %q", name)
	}
	return m, nil
}

// PutFunction registers or replaces a callable operation.
func (c *Catalog) PutFunction(m FunctionMeta) error {
	if m.Name == "" || !m.ResultType.Valid() {
		return fmt.Errorf("catalog: function metadata missing name or result type")
	}
	c.mu.Lock()
	c.funcs[strings.ToLower(m.Name)] = m
	c.mu.Unlock()
	return nil
}

// Function looks up an operation by case-insensitive name.
func (c *Catalog) Function(name string) (FunctionMeta, error) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	m, ok := c.funcs[strings.ToLower(name)]
	if !ok {
		return FunctionMeta{}, fmt.Errorf("catalog: unknown function %q", name)
	}
	return m, nil
}
