package catalog

import (
	"testing"

	"repro/internal/relation"
)

func TestTableRoundTrip(t *testing.T) {
	c := New()
	meta := TableMeta{
		Name:          "Protein_Sequences",
		Schema:        relation.NewSchema(relation.Column{Name: "ORF", Type: relation.TString}),
		Cardinality:   3000,
		AvgTupleBytes: 150,
		Node:          "data1",
	}
	if err := c.PutTable(meta); err != nil {
		t.Fatal(err)
	}
	got, err := c.Table("protein_sequences") // case-insensitive
	if err != nil {
		t.Fatal(err)
	}
	if got.Cardinality != 3000 || got.Node != "data1" {
		t.Fatalf("got %+v", got)
	}
	if _, err := c.Table("missing"); err == nil {
		t.Fatal("expected error")
	}
}

func TestPutTableValidation(t *testing.T) {
	c := New()
	if err := c.PutTable(TableMeta{Name: "x"}); err == nil {
		t.Error("nil schema accepted")
	}
	if err := c.PutTable(TableMeta{Schema: relation.NewSchema()}); err == nil {
		t.Error("empty name accepted")
	}
}

func TestFunctionRoundTrip(t *testing.T) {
	c := New()
	err := c.PutFunction(FunctionMeta{
		Name:       "EntropyAnalyser",
		ArgTypes:   []relation.Type{relation.TString},
		ResultType: relation.TFloat,
		CostMs:     16,
	})
	if err != nil {
		t.Fatal(err)
	}
	got, err := c.Function("entropyanalyser")
	if err != nil {
		t.Fatal(err)
	}
	if got.ResultType != relation.TFloat || got.CostMs != 16 {
		t.Fatalf("got %+v", got)
	}
	if _, err := c.Function("nope"); err == nil {
		t.Fatal("expected error")
	}
	if err := c.PutFunction(FunctionMeta{Name: "bad"}); err == nil {
		t.Fatal("invalid result type accepted")
	}
}
