// Package repro (griddqp) is an adaptive distributed query processor for
// simulated Grid environments, reproducing Gounaris et al., "Adapting to
// Changing Resource Performance in Grid Query Processing" (VLDB DMG 2005).
//
// It provides:
//
//   - a service-based distributed query engine in the style of OGSA-DQP:
//     a coordinator (GDQS) that parses, optimises and schedules SQL over
//     machines advertised in a resource registry, and evaluation services
//     (GQES) running iterator-model fragments connected by exchanges;
//   - intra-operator parallelism with runtime-adaptable tuple distribution;
//   - the paper's adaptivity architecture — self-monitoring operators,
//     per-site MonitoringEventDetectors, a Diagnoser and a Responder
//     communicating over an asynchronous publish/subscribe bus — able to
//     rebalance both stateless operators (prospectively or retrospectively)
//     and stateful hash joins (retrospectively, by repartitioning the
//     operator state rebuilt from exchange recovery logs);
//   - a simulated Grid substrate (virtual time, perturbable machines,
//     100 Mbps network) on which the paper's evaluation is reproduced.
//
// # Quick start
//
//	g := repro.NewGrid()
//	g.UseDemoDatabase()                        // protein tables on "data1"
//	g.AddComputeNode("ws0", 1.0)               // hosts EntropyAnalyser
//	g.AddComputeNode("ws1", 1.0)
//	coord, _ := g.NewCoordinator("coord", repro.Adaptive())
//	res, _ := coord.Query(
//	    "select EntropyAnalyser(p.sequence) from protein_sequences p")
//	fmt.Println(len(res.Rows), "rows in", res.ResponseMs, "paper-ms")
//
// Perturb a machine mid-flight with g.Perturb("ws1", repro.Slowdown(10))
// and watch the Responder shift work away from it.
package repro

import (
	"context"
	"fmt"
	"net/http"
	"time"

	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/engine"
	"repro/internal/obs"
	"repro/internal/plancache"
	"repro/internal/qerr"
	"repro/internal/relation"
	"repro/internal/services"
	"repro/internal/simnet"
	"repro/internal/storage"
	"repro/internal/vtime"
	"repro/internal/ws"
)

// Value, Tuple and Column are the relational primitives of results.
type (
	Value  = relation.Value
	Tuple  = relation.Tuple
	Column = relation.Column
)

// Re-exported value constructors.
var (
	Int    = relation.Int
	Float  = relation.Float
	String = relation.String
)

// Perturbation models artificial machine load; see Slowdown, SleepInjection,
// NormalJitter and StepAt.
type Perturbation = vtime.Perturbation

// Slowdown makes every unit of work on the machine k times costlier — the
// paper's "iterate the same function multiple times" load.
func Slowdown(k float64) Perturbation { return vtime.Multiplier(k) }

// SleepInjection adds ms of extra cost before each unit of work — the
// paper's "inserting sleep() calls" load.
func SleepInjection(ms float64) Perturbation { return vtime.Sleep(ms) }

// NormalJitter draws a per-tuple slowdown from a normal distribution
// clamped to [lo, hi] (the paper's "rapid changes" scenario).
func NormalJitter(lo, hi float64, seed int64) Perturbation {
	return vtime.NewNormalMultiplier(lo, hi, seed)
}

// StepAt switches from one perturbation to another after n work units.
func StepAt(n int, before, after Perturbation) Perturbation {
	return vtime.Step{At: n, Before: before, After: after}
}

// WebService is a callable operation, invocable from queries through the
// operation_call operator. EntropyAnalyser and SequenceLength ship with the
// library; implement the interface to add your own.
type WebService = ws.Service

// EntropyAnalyser returns the demo bioinformatics Web Service with the
// given per-call cost in paper milliseconds (0 selects the default).
func EntropyAnalyser(costMs float64) WebService { return ws.Entropy{CostMs: costMs} }

// SequenceLength returns the auxiliary demo service.
func SequenceLength() WebService { return ws.SequenceLength{} }

// GridOption customises NewGrid.
type GridOption func(*services.ClusterConfig)

// WithScale sets the real duration of one paper millisecond (default 20µs);
// all modelled costs are expressed in paper milliseconds.
func WithScale(d time.Duration) GridOption {
	return func(c *services.ClusterConfig) { c.Scale = d }
}

// WithCosts overrides the engine's operator cost model.
func WithCosts(costs engine.Costs) GridOption {
	return func(c *services.ClusterConfig) { c.Costs = costs }
}

// Grid is a simulated Grid under construction: machines, data, services.
type Grid struct {
	cluster *services.Cluster
}

// NewGrid builds an empty simulated Grid.
func NewGrid(opts ...GridOption) *Grid {
	cfg := services.ClusterConfig{}
	for _, o := range opts {
		o(&cfg)
	}
	return &Grid{cluster: services.NewCluster(cfg)}
}

// Cluster exposes the underlying service layer for advanced use (bus
// subscriptions, catalog inspection).
func (g *Grid) Cluster() *services.Cluster { return g.cluster }

// UseDemoDatabase adds a data node "data1" hosting the paper's demo tables
// at their evaluation cardinalities (3000 protein_sequences, 4700
// protein_interactions).
func (g *Grid) UseDemoDatabase() error {
	return g.cluster.AddDataNode("data1", dataset.Demo())
}

// AddDemoDatabaseSized is UseDemoDatabase with custom cardinalities.
func (g *Grid) AddDemoDatabaseSized(node string, sequences, interactions int) error {
	return g.cluster.AddDataNode(simnet.NodeID(node), dataset.DemoSized(sequences, interactions))
}

// AddStoredDatabaseSized adds a data node whose demo tables live as
// block-framed runs under dir on disk rather than in memory, generated
// streamingly at the given cardinalities — the tables may be far larger than
// RAM. Scans read them batch-at-a-time with budget-governed readahead (see
// ScanReadahead) and results are tuple-for-tuple identical to
// AddDemoDatabaseSized at the same cardinalities.
func (g *Grid) AddStoredDatabaseSized(node, dir string, sequences, interactions int) error {
	backend, err := storage.NewPosix(dir)
	if err != nil {
		return err
	}
	store, err := dataset.DemoStored(backend, sequences, interactions)
	if err != nil {
		return err
	}
	return g.cluster.AddDataNode(simnet.NodeID(node), store)
}

// AddComputeNode registers a machine able to evaluate query fragments. It
// hosts the demo Web Services plus any extra ones given.
func (g *Grid) AddComputeNode(name string, relativeSpeed float64, extra ...WebService) error {
	reg := ws.NewRegistry(ws.Entropy{}, ws.SequenceLength{})
	for _, s := range extra {
		reg.Register(s)
	}
	return g.cluster.AddComputeNode(simnet.NodeID(name), relativeSpeed, reg)
}

// Perturb installs (or clears, with nil) an artificial load on a machine.
// It may be called while queries run; that is the point.
func (g *Grid) Perturb(node string, p Perturbation) error {
	n := g.cluster.Node(simnet.NodeID(node))
	if n == nil {
		return fmt.Errorf("griddqp: unknown node %q", node)
	}
	n.SetPerturbation(p)
	return nil
}

// KillNode crash-stops a machine, mid-query or not. Against an Elastic
// coordinator, running queries detect the death, replay the machine's
// unacknowledged work onto surviving evaluators, and complete with exact
// results; against a non-elastic coordinator they fail. Idempotent; the
// machine cannot be revived (register a new one instead).
func (g *Grid) KillNode(node string) error {
	return g.cluster.KillNode(simnet.NodeID(node))
}

// Alive reports whether a machine is registered and has not been killed.
func (g *Grid) Alive(node string) bool {
	return g.cluster.Alive(simnet.NodeID(node))
}

// CoordinatorOption customises NewCoordinator.
type CoordinatorOption func(*services.GDQSConfig)

// Adaptive enables the AQP components with the paper's default parameters.
// Options that tune orthogonal knobs (QueryTimeout, Parallel, Elastic,
// Heartbeat, MemoryBudget, SpillDir, ScanReadahead) survive in either order.
func Adaptive() CoordinatorOption {
	return func(c *services.GDQSConfig) {
		def := services.DefaultGDQSConfig()
		def.QueryTimeout = c.QueryTimeout
		def.Parallelism = c.Parallelism
		def.Elastic = c.Elastic
		def.HeartbeatEvery = c.HeartbeatEvery
		def.HeartbeatMisses = c.HeartbeatMisses
		def.MemoryBudgetBytes = c.MemoryBudgetBytes
		def.SpillDir = c.SpillDir
		def.ScanReadahead = c.ScanReadahead
		*c = def
	}
}

// Elastic enables crash recovery and live cluster membership, implying
// Adaptive: evaluator death mid-query (see Grid.KillNode) is detected —
// through membership events, heartbeat probes, and peer-loss discoveries —
// and the dead machine's unacknowledged partitions are replayed from
// exchange recovery logs onto survivors, preserving exact results; compute
// nodes registered while a query runs are admitted into its stateless
// partitioned fragments with a nonzero work share, no restart. Result
// stats report Failovers and NodesJoined. Elastic runs the engine's
// commit/acknowledgement protocol on every exchange and forces serial
// fragment drivers, so it costs some throughput; see docs/OPERATIONS.md.
func Elastic() CoordinatorOption {
	return func(c *services.GDQSConfig) {
		if !c.Adaptive {
			Adaptive()(c)
		}
		c.Elastic = true
	}
}

// Heartbeat tunes the elastic failure detector: every is the real-time
// probe interval, and misses is how many consecutive probe failures
// diagnose a machine as dead (unreachable-machine errors are definitive
// and bypass the count). Zero values keep the service defaults.
func Heartbeat(every time.Duration, misses int) CoordinatorOption {
	return func(c *services.GDQSConfig) {
		c.HeartbeatEvery = every
		c.HeartbeatMisses = misses
	}
}

// Parallel sets the morsel worker-pool width of every fragment driver:
// parallel-eligible fragments (those feeding an exchange, with no sort or
// limit) run their operator chain on n workers over shared operator state.
// n <= 1 keeps the classic serial drivers; pass a negative n to use the
// machine's GOMAXPROCS.
func Parallel(n int) CoordinatorOption {
	return func(c *services.GDQSConfig) { c.Parallelism = n }
}

// Retrospective selects R1 response: recovery-log tuples (and hash-join
// state) are redistributed, not just future tuples. Stateful fragments
// always use R1 regardless.
func Retrospective() CoordinatorOption {
	return func(c *services.GDQSConfig) { c.Responder.Response = core.R1 }
}

// AssessWithCommunication selects A2 assessment: the Diagnoser adds the
// observed per-tuple communication cost to each clone's processing cost.
func AssessWithCommunication() CoordinatorOption {
	return func(c *services.GDQSConfig) { c.Diagnoser.Assessment = core.A2 }
}

// MonitorEvery sets the M1 monitoring frequency in tuples (paper default
// 10); 0 disables self-monitoring.
func MonitorEvery(tuples int) CoordinatorOption {
	return func(c *services.GDQSConfig) { c.MonitorEvery = tuples }
}

// QueryTimeout bounds a query's real execution time.
func QueryTimeout(d time.Duration) CoordinatorOption {
	return func(c *services.GDQSConfig) { c.QueryTimeout = d }
}

// PlanCacheSize bounds the coordinator's normalized-SQL plan cache: queries
// differing only in comparison literals share one cached plan template,
// re-bound per execution. 0 keeps the default capacity; pass a negative size
// to disable caching entirely.
func PlanCacheSize(n int) CoordinatorOption {
	return func(c *services.GDQSConfig) { c.PlanCacheSize = n }
}

// MaxConcurrentQueries bounds how many queries the coordinator runs at once;
// arrivals beyond the bound wait in FIFO order, and arrivals beyond queueCap
// are rejected immediately with ErrQueryRejected. Zero values keep the
// service defaults.
func MaxConcurrentQueries(n, queueCap int) CoordinatorOption {
	return func(c *services.GDQSConfig) {
		c.MaxConcurrent = n
		c.MaxQueue = queueCap
	}
}

// QueueTimeout bounds how long one query may wait for admission before
// failing with ErrTimeout (0: bounded only by the query's context).
func QueueTimeout(d time.Duration) CoordinatorOption {
	return func(c *services.GDQSConfig) { c.QueueTimeout = d }
}

// MemoryBudget caps each query's stateful-operator memory in bytes: hash
// joins and aggregates grace-hash-spill partitions to the coordinator's
// storage backend when the budget is breached, and sorts switch to external
// merge runs. Results are unchanged (joins and aggregates are order-free
// multisets); only memory use and speed differ. 0 disables budgeting; see
// also Coordinator.SetMemoryBudget and the GRIDDQP_FORCE_MEM_BUDGET
// environment override.
func MemoryBudget(bytes int64) CoordinatorOption {
	return func(c *services.GDQSConfig) { c.MemoryBudgetBytes = bytes }
}

// SpillDir roots spill runs (and therefore larger-than-memory query state)
// in a posix directory instead of the default in-memory backend.
func SpillDir(dir string) CoordinatorOption {
	return func(c *services.GDQSConfig) { c.SpillDir = dir }
}

// ScanReadahead sets how many blocks a serial stored-table scan keeps in
// flight: the scan decodes one block while an asynchronous reader fetches the
// next n-1, every in-flight byte reserved against the query's memory budget
// (the pipeline shrinks to a single block under budget pressure). 0 keeps the
// default double buffering; a negative n disables the readahead goroutine
// entirely, reading blocks synchronously.
func ScanReadahead(n int) CoordinatorOption {
	return func(c *services.GDQSConfig) { c.ScanReadahead = n }
}

// Typed query-failure sentinels, re-exported from the internal error layer
// so callers can classify QueryContext failures with errors.Is. ErrCanceled
// also unwraps to context.Canceled and ErrTimeout to
// context.DeadlineExceeded.
var (
	ErrCanceled = qerr.ErrCanceled
	ErrTimeout  = qerr.ErrTimeout
	// ErrQueryRejected reports that the coordinator's admission queue was
	// full when the query arrived.
	ErrQueryRejected = qerr.ErrRejected
)

// Coordinator is a GDQS handle.
type Coordinator struct {
	gdqs *services.GDQS
}

// NewCoordinator creates the query coordinator on the named machine. With
// no options it runs the static (non-adaptive) system.
func (g *Grid) NewCoordinator(node string, opts ...CoordinatorOption) (*Coordinator, error) {
	cfg := services.GDQSConfig{QueryTimeout: 5 * time.Minute}
	for _, o := range opts {
		o(&cfg)
	}
	gd, err := services.NewGDQS(g.cluster, simnet.NodeID(node), cfg)
	if err != nil {
		return nil, err
	}
	return &Coordinator{gdqs: gd}, nil
}

// Result is a completed query.
type Result struct {
	Columns []Column
	Rows    []Tuple
	// ResponseMs is the response time in paper milliseconds.
	ResponseMs float64
	// Stats exposes the full adaptivity counters.
	Stats services.QueryStats
}

// Query executes a SQL statement to completion under the coordinator's
// configured timeout.
func (c *Coordinator) Query(sql string) (*Result, error) {
	return c.QueryContext(context.Background(), sql)
}

// QueryContext executes a SQL statement to completion under ctx: cancelling
// it stops every fragment driver and adaptivity goroutine the query started.
// Use errors.Is with qerr.ErrCanceled / qerr.ErrTimeout (or errors.As with
// *qerr.Error) to classify failures.
func (c *Coordinator) QueryContext(ctx context.Context, sql string) (*Result, error) {
	res, err := c.gdqs.Execute(ctx, sql)
	if err != nil {
		return nil, err
	}
	return &Result{
		Columns:    res.Columns,
		Rows:       res.Rows,
		ResponseMs: res.Stats.ResponseMs,
		Stats:      res.Stats,
	}, nil
}

// Explain returns the logical and scheduled physical plan of a query
// without executing it.
func (c *Coordinator) Explain(sql string) (string, error) {
	return c.gdqs.Explain(sql)
}

// Stmt is a prepared statement: parsed, normalized and planned once, then
// executed repeatedly with different arguments. Safe for concurrent Execute.
type Stmt struct {
	stmt *services.Stmt
}

// Prepare compiles a SQL statement for repeated execution. The statement may
// contain `?` parameter markers in WHERE/HAVING comparisons; each Execute
// supplies one Go value (int, float64 or string) per marker, in statement
// order. Repeated Queries with literal-only differences share the same
// cached plan even without Prepare — preparing simply skips the per-call
// parse and normalize and surfaces planning errors early.
func (c *Coordinator) Prepare(sql string) (*Stmt, error) {
	s, err := c.gdqs.Prepare(sql)
	if err != nil {
		return nil, err
	}
	return &Stmt{stmt: s}, nil
}

// NumParams reports how many `?` arguments Execute expects.
func (s *Stmt) NumParams() int { return s.stmt.NumParams() }

// Execute runs the prepared statement under ctx with the given arguments.
// Admission, cancellation and error semantics match QueryContext.
func (s *Stmt) Execute(ctx context.Context, args ...any) (*Result, error) {
	res, err := s.stmt.Execute(ctx, args...)
	if err != nil {
		return nil, err
	}
	return &Result{
		Columns:    res.Columns,
		Rows:       res.Rows,
		ResponseMs: res.Stats.ResponseMs,
		Stats:      res.Stats,
	}, nil
}

// PlanCacheStats snapshots the coordinator's plan-cache counters: hits,
// misses, evictions and current size (zeros when caching is disabled).
type PlanCacheStats = plancache.Stats

// PlanCacheStats reports how the coordinator's plan cache is doing.
func (c *Coordinator) PlanCacheStats() PlanCacheStats {
	return c.gdqs.PlanCacheStats()
}

// SetMemoryBudget retunes the per-query memory budget (bytes; 0 disables
// budgeting) on a live coordinator. Queries admitted after the call run
// under the new budget; running queries keep the one they started with.
func (c *Coordinator) SetMemoryBudget(bytes int64) {
	c.gdqs.SetMemoryBudget(bytes)
}

// MetricsHandler serves the process-wide observability layer over HTTP:
// GET /metrics is the Prometheus text exposition of every engine and
// adaptivity counter, and GET /timeline is the JSON adaptation timeline
// (med-notify → proposal → outcome events; ?fragment= and ?since= filter).
// Mount it on any listener, e.g.
//
//	go http.ListenAndServe(":9090", repro.MetricsHandler())
func MetricsHandler() http.Handler {
	return obs.Handler(obs.Default())
}
