// Command doclint enforces doc comments on exported identifiers. It walks
// the packages named on the command line (./... style patterns are resolved
// by walking the directory tree; testdata and _test.go files are skipped)
// and reports every exported top-level function, method, type, constant and
// variable that lacks one. For grouped const/var declarations a single doc
// comment on the block covers every name in it.
//
// It exists because `go vet` does not check documentation and the container
// bakes in no external linters; `make check` runs it over the public facade
// and every internal package.
package main

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"io/fs"
	"os"
	"path/filepath"
	"strings"
)

func main() {
	args := os.Args[1:]
	if len(args) == 0 {
		args = []string{"./..."}
	}
	var dirs []string
	for _, a := range args {
		if strings.HasSuffix(a, "/...") {
			root := strings.TrimSuffix(a, "/...")
			if root == "." || root == "" {
				root = "."
			}
			err := filepath.WalkDir(root, func(path string, d fs.DirEntry, err error) error {
				if err != nil {
					return err
				}
				if !d.IsDir() {
					return nil
				}
				name := d.Name()
				if name == "testdata" || strings.HasPrefix(name, ".") && path != root {
					return filepath.SkipDir
				}
				dirs = append(dirs, path)
				return nil
			})
			if err != nil {
				fatalf("%v", err)
			}
		} else {
			dirs = append(dirs, a)
		}
	}

	bad := 0
	for _, dir := range dirs {
		bad += lintDir(dir)
	}
	if bad > 0 {
		fmt.Fprintf(os.Stderr, "doclint: %d exported identifier(s) without doc comments\n", bad)
		os.Exit(1)
	}
}

// lintDir parses one directory's package and reports undocumented exported
// identifiers, returning how many it found.
func lintDir(dir string) int {
	fset := token.NewFileSet()
	pkgs, err := parser.ParseDir(fset, dir, func(fi fs.FileInfo) bool {
		return !strings.HasSuffix(fi.Name(), "_test.go")
	}, parser.ParseComments)
	if err != nil {
		// Directories without Go files are fine; real syntax errors will
		// fail the build step of the same make target.
		return 0
	}
	bad := 0
	report := func(pos token.Pos, what, name string) {
		fmt.Printf("%s: undocumented exported %s %s\n", fset.Position(pos), what, name)
		bad++
	}
	for _, pkg := range pkgs {
		for _, file := range pkg.Files {
			for _, decl := range file.Decls {
				switch d := decl.(type) {
				case *ast.FuncDecl:
					if !d.Name.IsExported() || !exportedReceiver(d) {
						continue
					}
					if d.Doc == nil {
						what := "function"
						if d.Recv != nil {
							what = "method"
						}
						report(d.Pos(), what, d.Name.Name)
					}
				case *ast.GenDecl:
					lintGenDecl(d, report)
				}
			}
		}
	}
	return bad
}

// lintGenDecl checks one const/var/type declaration. A doc comment on the
// declaration group covers every spec inside it; otherwise each exported
// spec needs its own.
func lintGenDecl(d *ast.GenDecl, report func(token.Pos, string, string)) {
	if d.Doc != nil {
		return
	}
	for _, spec := range d.Specs {
		switch s := spec.(type) {
		case *ast.TypeSpec:
			if s.Name.IsExported() && s.Doc == nil && s.Comment == nil {
				report(s.Pos(), "type", s.Name.Name)
			}
		case *ast.ValueSpec:
			if s.Doc != nil || s.Comment != nil {
				continue
			}
			for _, n := range s.Names {
				if n.IsExported() {
					what := "variable"
					if d.Tok == token.CONST {
						what = "constant"
					}
					report(n.Pos(), what, n.Name)
				}
			}
		}
	}
}

// exportedReceiver reports whether a function's receiver (if any) is an
// exported type — methods on unexported types are not part of the package
// surface.
func exportedReceiver(d *ast.FuncDecl) bool {
	if d.Recv == nil || len(d.Recv.List) == 0 {
		return true
	}
	t := d.Recv.List[0].Type
	for {
		switch x := t.(type) {
		case *ast.StarExpr:
			t = x.X
		case *ast.IndexExpr:
			t = x.X
		case *ast.IndexListExpr:
			t = x.X
		case *ast.Ident:
			return x.IsExported()
		default:
			return true
		}
	}
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "doclint: "+format+"\n", args...)
	os.Exit(1)
}
