// Command dqpctl runs one query on an in-process simulated Grid and prints
// the rows plus the execution statistics. It is the quickest way to watch
// the adaptive query processor at work:
//
//	dqpctl -adaptive -perturb ws1=x10 \
//	   -query "select EntropyAnalyser(p.sequence) from protein_sequences p"
//
// Flags select the standard topology (one data node, N WS nodes, a
// coordinator), the adaptivity policies (A1/A2 assessment, R1/R2 response),
// and per-node perturbations in the syntax of vtime.Parse (x10, sleep:10,
// normal:20,40, x10@500).
//
// With -elastic, faults can be scripted against the running query:
//
//	dqpctl -elastic -kill ws1@5ms -add ws9@10ms:1.5 \
//	   -query "select EntropyAnalyser(p.sequence) from protein_sequences p"
//
// kills evaluator ws1 five milliseconds (real time) into the run and
// registers a new 1.5x-speed evaluator ws9 at ten — the query recovers the
// dead machine's work onto survivors, admits the newcomer, and completes
// with exact results. See docs/OPERATIONS.md.
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
	"time"

	repro "repro"
	"repro/internal/obs"
	"repro/internal/vtime"
)

func main() {
	var (
		query        = flag.String("query", "select EntropyAnalyser(p.sequence) from protein_sequences p", "SQL query to execute")
		adaptive     = flag.Bool("adaptive", false, "enable the AQP components")
		retro        = flag.Bool("retrospective", false, "use R1 (retrospective) response instead of R2")
		a2           = flag.Bool("a2", false, "use A2 assessment (adds communication cost) instead of A1")
		wsNodes      = flag.Int("ws", 2, "number of WS/compute nodes")
		sequences    = flag.Int("sequences", 3000, "protein_sequences cardinality")
		interactions = flag.Int("interactions", 4700, "protein_interactions cardinality")
		monitorEvery = flag.Int("monitor-every", 10, "M1 frequency in tuples (0 disables)")
		parallel     = flag.Int("parallel", 0, "morsel worker-pool width per fragment driver (0/1 serial, negative = GOMAXPROCS)")
		scale        = flag.Duration("scale", 10*time.Microsecond, "real duration of one paper millisecond")
		showRows     = flag.Int("rows", 5, "result rows to print (-1 for all)")
		explain      = flag.Bool("explain", false, "print the plan instead of executing")
		trace        = flag.Bool("trace", false, "print the adaptation timeline")
		metrics      = flag.String("metrics", "", "HTTP listen address for /metrics and /timeline during the run (e.g. :9090; empty disables)")
		elastic      = flag.Bool("elastic", false, "enable crash recovery and live membership (implies -adaptive)")
		memBudget    = flag.Int64("mem-budget", 0, "per-query stateful-operator memory budget in bytes; joins/aggregates/sorts spill past it (0 unbudgeted)")
		spillDir     = flag.String("spill-dir", "", "directory for posix spill runs (empty spills to memory)")
		perturbs     multiFlag
		kills        multiFlag
		adds         multiFlag
	)
	flag.Var(&perturbs, "perturb", "node perturbation as node=SPEC (repeatable), e.g. ws1=x10, ws0=sleep:10")
	flag.Var(&kills, "kill", "crash-stop a node mid-run as node@DELAY (repeatable), e.g. ws1@5ms")
	flag.Var(&adds, "add", "register a compute node mid-run as node@DELAY[:SPEED] (repeatable), e.g. ws9@10ms:1.5")
	flag.Parse()

	if *metrics != "" {
		srv, bound, err := obs.Serve(*metrics, obs.Default())
		if err != nil {
			fatalf("metrics listener: %v", err)
		}
		defer srv.Close()
		fmt.Fprintf(os.Stderr, "observability: http://%s/metrics and /timeline\n", bound)
	}

	grid := repro.NewGrid(repro.WithScale(*scale))
	if err := grid.AddDemoDatabaseSized("data1", *sequences, *interactions); err != nil {
		fatalf("%v", err)
	}
	for i := 0; i < *wsNodes; i++ {
		if err := grid.AddComputeNode(fmt.Sprintf("ws%d", i), 1.0); err != nil {
			fatalf("%v", err)
		}
	}
	for _, spec := range perturbs {
		eq := strings.Index(spec, "=")
		if eq < 0 {
			fatalf("bad -perturb %q (want node=SPEC)", spec)
		}
		p, err := vtime.Parse(spec[eq+1:])
		if err != nil {
			fatalf("%v", err)
		}
		if err := grid.Perturb(spec[:eq], p); err != nil {
			fatalf("%v", err)
		}
	}

	var opts []repro.CoordinatorOption
	if *parallel != 0 {
		opts = append(opts, repro.Parallel(*parallel))
	}
	if *memBudget != 0 {
		opts = append(opts, repro.MemoryBudget(*memBudget))
	}
	if *spillDir != "" {
		opts = append(opts, repro.SpillDir(*spillDir))
	}
	if *adaptive || *elastic {
		opts = append(opts, repro.Adaptive())
		if *retro {
			opts = append(opts, repro.Retrospective())
		}
		if *a2 {
			opts = append(opts, repro.AssessWithCommunication())
		}
		opts = append(opts, repro.MonitorEvery(*monitorEvery))
	}
	if *elastic {
		opts = append(opts, repro.Elastic())
	}
	coord, err := grid.NewCoordinator("coord", opts...)
	if err != nil {
		fatalf("%v", err)
	}

	if (len(kills) > 0 || len(adds) > 0) && !*elastic {
		fatalf("-kill/-add require -elastic (a static run cannot recover)")
	}
	var timers []*time.Timer
	for _, spec := range kills {
		node, delay, _, err := parseFaultSpec(spec, false)
		if err != nil {
			fatalf("bad -kill %q: %v", spec, err)
		}
		timers = append(timers, time.AfterFunc(delay, func() {
			if err := grid.KillNode(node); err != nil {
				fmt.Fprintf(os.Stderr, "dqpctl: kill %s: %v\n", node, err)
			} else {
				fmt.Fprintf(os.Stderr, "dqpctl: killed %s\n", node)
			}
		}))
	}
	for _, spec := range adds {
		node, delay, speed, err := parseFaultSpec(spec, true)
		if err != nil {
			fatalf("bad -add %q: %v", spec, err)
		}
		timers = append(timers, time.AfterFunc(delay, func() {
			if err := grid.AddComputeNode(node, speed); err != nil {
				fmt.Fprintf(os.Stderr, "dqpctl: add %s: %v\n", node, err)
			} else {
				fmt.Fprintf(os.Stderr, "dqpctl: added %s (speed %.2g)\n", node, speed)
			}
		}))
	}
	defer func() {
		for _, t := range timers {
			t.Stop()
		}
	}()

	if *explain {
		out, err := coord.Explain(*query)
		if err != nil {
			fatalf("%v", err)
		}
		fmt.Print(out)
		return
	}

	start := time.Now()
	res, err := coord.Query(*query)
	if err != nil {
		fatalf("%v", err)
	}
	fmt.Printf("response time: %.0f paper-ms (%.2fs real)\n", res.ResponseMs, time.Since(start).Seconds())
	fmt.Printf("rows: %d\n", len(res.Rows))
	if *adaptive || *elastic {
		s := res.Stats
		fmt.Printf("raw monitoring events: %d, MED notifications: %d, proposals: %d\n",
			s.RawEvents, s.MEDNotifications, s.Proposals)
		fmt.Printf("adaptations: %d (skipped late: %d), tuples moved: %d, state replays: %d\n",
			s.Adaptations, s.SkippedLate, s.TuplesMoved, s.StateReplays)
		if *elastic {
			fmt.Printf("failovers: %d, nodes joined: %d\n", s.Failovers, s.NodesJoined)
		}
		if *trace {
			fmt.Println("adaptation timeline:")
			for _, e := range s.Timeline {
				mode := "R2"
				if e.Retrospective {
					mode = "R1"
				}
				switch e.Outcome {
				case "adapted":
					fmt.Printf("  t=%8.0fms %-6s %s deployed W=%v in %.0fms\n",
						e.AtMs, e.Fragment, mode, roundWeights(e.Weights), e.DurationMs)
				default:
					fmt.Printf("  t=%8.0fms %-6s %s\n", e.AtMs, e.Fragment, e.Outcome)
				}
			}
		}
	}
	if n := len(res.Rows); n > 0 && *showRows != 0 {
		limit := *showRows
		if limit < 0 || limit > n {
			limit = n
		}
		var header []string
		for _, c := range res.Columns {
			header = append(header, c.QualifiedName())
		}
		fmt.Printf("\n%s\n", strings.Join(header, " | "))
		for _, row := range res.Rows[:limit] {
			var cells []string
			for _, v := range row {
				cells = append(cells, v.Format())
			}
			fmt.Println(strings.Join(cells, " | "))
		}
		if limit < n {
			fmt.Printf("... (%d more rows)\n", n-limit)
		}
	}
}

// multiFlag collects repeatable string flags.
type multiFlag []string

func (m *multiFlag) String() string { return strings.Join(*m, ",") }

func (m *multiFlag) Set(v string) error {
	*m = append(*m, v)
	return nil
}

// parseFaultSpec parses node@DELAY (and, with withSpeed, an optional
// :SPEED suffix defaulting to 1.0) into its parts.
func parseFaultSpec(spec string, withSpeed bool) (node string, delay time.Duration, speed float64, err error) {
	at := strings.Index(spec, "@")
	if at <= 0 {
		return "", 0, 0, fmt.Errorf("want node@DELAY")
	}
	node, rest := spec[:at], spec[at+1:]
	speed = 1.0
	if withSpeed {
		if colon := strings.LastIndex(rest, ":"); colon >= 0 {
			speed, err = strconv.ParseFloat(rest[colon+1:], 64)
			if err != nil || speed <= 0 {
				return "", 0, 0, fmt.Errorf("bad speed %q", rest[colon+1:])
			}
			rest = rest[:colon]
		}
	}
	delay, err = time.ParseDuration(rest)
	if err != nil {
		return "", 0, 0, err
	}
	return node, delay, speed, nil
}

func roundWeights(ws []float64) []float64 {
	out := make([]float64, len(ws))
	for i, w := range ws {
		out[i] = float64(int(w*100+0.5)) / 100
	}
	return out
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "dqpctl: "+format+"\n", args...)
	os.Exit(1)
}
