// Command dqp-coordinator runs the Grid Distributed Query Service as a real
// network daemon: it plans the query, deploys fragments to the dqp-evaluator
// processes named in the manifest, collects the results, and — when the
// deployment is adaptive — hosts the MonitoringEventDetectors, Diagnoser
// and Responder, driving rebalancing over TCP.
//
// Start the evaluators first (see dqp-evaluator), then:
//
//	dqp-coordinator -node coord -listen :7000 \
//	    -peers data1=host1:7001,ws0=host2:7002,ws1=host3:7003 \
//	    -data data1 -compute ws0,ws1 -adaptive -retrospective \
//	    -query "select EntropyAnalyser(p.sequence) from protein_sequences p"
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"repro/internal/cliutil"
	"repro/internal/obs"
	"repro/internal/services"
	"repro/internal/simnet"
	"repro/internal/transport"
)

func main() {
	var (
		node    = flag.String("node", "coord", "this machine's node name")
		listen  = flag.String("listen", ":7000", "TCP listen address")
		query   = flag.String("query", "select EntropyAnalyser(p.sequence) from protein_sequences p", "SQL query to execute")
		rows    = flag.Int("rows", 5, "result rows to print (-1 for all)")
		timeout = flag.Duration("timeout", 5*time.Minute, "query timeout")
		metrics = flag.String("metrics", "", "HTTP listen address for /metrics and /timeline (e.g. :9090; empty disables)")
	)
	manifestFlags := cliutil.NewManifestFlags()
	flag.Parse()
	if *metrics != "" {
		srv, bound, err := obs.Serve(*metrics, obs.Default())
		if err != nil {
			fatalf("metrics listener: %v", err)
		}
		defer srv.Close()
		fmt.Fprintf(os.Stderr, "observability: http://%s/metrics and /timeline\n", bound)
	}
	manifest, peers, err := manifestFlags.Build()
	if err != nil {
		fatalf("%v", err)
	}
	if *node != string(manifest.Coordinator) {
		fatalf("-node %q must equal -coordinator %q", *node, manifest.Coordinator)
	}
	tr, err := transport.NewTCP(simnet.NodeID(*node), *listen)
	if err != nil {
		fatalf("%v", err)
	}
	defer tr.Close()
	for name, addr := range peers {
		tr.AddPeer(simnet.NodeID(name), addr)
	}
	coord, err := services.NewRemoteCoordinator(manifest, tr)
	if err != nil {
		fatalf("%v", err)
	}
	defer coord.Close()

	start := time.Now()
	res, err := coord.Execute(context.Background(), *query, *timeout)
	if err != nil {
		fatalf("%v", err)
	}
	fmt.Printf("response time: %.0f paper-ms (%.2fs real)\n", res.Stats.ResponseMs, time.Since(start).Seconds())
	fmt.Printf("rows: %d\n", len(res.Rows))
	if manifest.Adaptive {
		fmt.Printf("adaptations: %d, tuples moved: %d, state replays: %d\n",
			res.Stats.Adaptations, res.Stats.TuplesMoved, res.Stats.StateReplays)
	}
	limit := *rows
	if limit < 0 || limit > len(res.Rows) {
		limit = len(res.Rows)
	}
	for _, row := range res.Rows[:limit] {
		var cells []string
		for _, v := range row {
			cells = append(cells, v.Format())
		}
		fmt.Println(strings.Join(cells, " | "))
	}
	if limit < len(res.Rows) {
		fmt.Printf("... (%d more rows)\n", len(res.Rows)-limit)
	}
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "dqp-coordinator: "+format+"\n", args...)
	os.Exit(1)
}
