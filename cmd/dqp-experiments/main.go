// Command dqp-experiments regenerates EXPERIMENTS.md: it runs the full
// reproduction of the paper's evaluation — Table 1, Figs. 2–5, the overhead
// analysis, and the monitoring-frequency study — on the calibrated
// simulated Grid and writes the paper-vs-measured report.
//
// Usage:
//
//	dqp-experiments [-o EXPERIMENTS.md] [-only Table1,Fig2a]
//	dqp-experiments -micro BENCH_micro.json
//	dqp-experiments -serve BENCH_serving.json [-clients 16] [-duration 2s]
//	dqp-experiments -servegate BENCH_serving.json
//
// The full suite takes several minutes of real time: the simulated testbed
// actually executes every query, including the heavily perturbed static
// runs the paper measured.
//
// With -micro, the command instead runs the engine micro-benchmarks (tuple
// codec, exchange producer, volcano-vs-batch operator chain) and writes the
// results as JSON to the given file.
//
// With -serve, it runs the sustained-load serving benchmark — N concurrent
// clients firing repeated-shape queries for a fixed duration, once with the
// plan cache on and once off — and writes QPS, latency percentiles and cache
// hit rates as JSON. With -servegate, it reruns a short serving benchmark
// and fails if throughput or hit rate regresses against the recorded
// baseline (SKIP_BENCH_GATE=1 skips, as with -benchgate).
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"repro/internal/exp"
	"repro/internal/microbench"
	"repro/internal/obs"
	"repro/internal/servebench"
)

func main() {
	out := flag.String("o", "EXPERIMENTS.md", "output file ('-' for stdout)")
	only := flag.String("only", "", "comma-separated experiment subset (Table1,Fig2a,Fig2b,Fig3a,Fig3b,Fig4,Fig5,Overheads,MonitoringFrequency,Recovery)")
	micro := flag.String("micro", "", "run the engine micro-benchmarks and write JSON results to this file ('-' for stdout), skipping the experiments")
	benchgate := flag.String("benchgate", "", "rerun the micro-benchmarks and exit non-zero if any ns_per_op regresses >25% against this baseline JSON (set SKIP_BENCH_GATE=1 to skip on noisy runners)")
	serve := flag.String("serve", "", "run the sustained-load serving benchmark (cache on vs off) and write JSON results to this file ('-' for stdout)")
	servegate := flag.String("servegate", "", "rerun a short serving benchmark and exit non-zero if QPS or cache hit rate regresses against this baseline JSON (SKIP_BENCH_GATE=1 skips)")
	clients := flag.Int("clients", 16, "concurrent clients for -serve / -servegate")
	duration := flag.Duration("duration", 2*time.Second, "load duration per -serve run")
	parallel := flag.Int("parallel", 0, "morsel worker-pool width per fragment driver (0/1 serial, negative = GOMAXPROCS)")
	metrics := flag.String("metrics", "", "HTTP listen address for /metrics and /timeline while the suite runs (e.g. :9090; empty disables)")
	memBudget := flag.Int64("mem-budget", 0, "per-query stateful-operator memory budget in bytes; operators spill past it (0 unbudgeted)")
	spillDir := flag.String("spill-dir", "", "directory for posix spill runs (empty spills to memory)")
	tableRows := flag.Int("table-rows", 0, "override protein_sequences cardinality for every run, scaling protein_interactions proportionally (0 keeps each experiment's own size)")
	tableBackend := flag.String("table-backend", "", "generate base tables as block-framed stored runs: 'memory', 'posix' (temp dir), or a posix directory path (empty keeps in-memory tables)")
	readahead := flag.Int("readahead", 0, "stored-scan readahead depth in blocks (0 default double buffering, negative synchronous)")
	flag.Parse()
	exp.DefaultParallelism = *parallel
	exp.DefaultMemoryBudget = *memBudget
	exp.DefaultSpillDir = *spillDir
	exp.DefaultTableRows = *tableRows
	exp.DefaultTableBackend = *tableBackend
	exp.DefaultScanReadahead = *readahead

	if *metrics != "" {
		srv, bound, err := obs.Serve(*metrics, obs.Default())
		if err != nil {
			fmt.Fprintf(os.Stderr, "dqp-experiments: metrics listener: %v\n", err)
			os.Exit(1)
		}
		defer srv.Close()
		fmt.Fprintf(os.Stderr, "observability: http://%s/metrics and /timeline\n", bound)
	}

	if *micro != "" {
		if err := runMicro(*micro); err != nil {
			fmt.Fprintf(os.Stderr, "dqp-experiments: %v\n", err)
			os.Exit(1)
		}
		return
	}

	if *benchgate != "" {
		ok, err := runBenchGate(*benchgate)
		if err != nil {
			fmt.Fprintf(os.Stderr, "dqp-experiments: %v\n", err)
			os.Exit(1)
		}
		if !ok {
			os.Exit(1)
		}
		return
	}

	if *serve != "" {
		if err := runServe(*serve, *clients, *duration); err != nil {
			fmt.Fprintf(os.Stderr, "dqp-experiments: %v\n", err)
			os.Exit(1)
		}
		return
	}

	if *servegate != "" {
		ok, err := runServeGate(*servegate, *clients)
		if err != nil {
			fmt.Fprintf(os.Stderr, "dqp-experiments: %v\n", err)
			os.Exit(1)
		}
		if !ok {
			os.Exit(1)
		}
		return
	}

	type builder struct {
		name string
		fn   func() (*exp.Experiment, error)
	}
	all := []builder{
		{"Table1", exp.Table1},
		{"Fig2a", exp.Fig2a},
		{"Fig2b", exp.Fig2b},
		{"Fig3a", exp.Fig3a},
		{"Fig3b", exp.Fig3b},
		{"Fig4", exp.Fig4},
		{"Fig5", exp.Fig5},
		{"Overheads", exp.Overheads},
		{"MonitoringFrequency", exp.MonitoringFrequency},
		{"Recovery", exp.Recovery},
		{"StoredStreaming", exp.StoredStreaming},
	}
	selected := all
	if *only != "" {
		want := map[string]bool{}
		for _, name := range strings.Split(*only, ",") {
			want[strings.TrimSpace(strings.ToLower(name))] = true
		}
		selected = nil
		for _, b := range all {
			if want[strings.ToLower(b.name)] {
				selected = append(selected, b)
			}
		}
		if len(selected) == 0 {
			fmt.Fprintf(os.Stderr, "dqp-experiments: no experiment matches %q\n", *only)
			os.Exit(2)
		}
	}

	start := time.Now()
	var experiments []*exp.Experiment
	for _, b := range selected {
		fmt.Fprintf(os.Stderr, "running %-20s ... ", b.name)
		t0 := time.Now()
		e, err := b.fn()
		if err != nil {
			fmt.Fprintf(os.Stderr, "failed: %v\n", err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "done in %s\n", time.Since(t0).Round(time.Second))
		experiments = append(experiments, e)
	}
	report := exp.Report(experiments, time.Since(start))
	if *out == "-" {
		fmt.Print(report)
		return
	}
	if err := os.WriteFile(*out, []byte(report), 0o644); err != nil {
		fmt.Fprintf(os.Stderr, "dqp-experiments: %v\n", err)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "wrote %s\n", *out)
}

// runBenchGate reruns the micro-benchmarks and compares ns_per_op against
// the recorded baseline; regressions beyond the tolerance fail the gate.
func runBenchGate(baselinePath string) (bool, error) {
	if os.Getenv("SKIP_BENCH_GATE") != "" {
		fmt.Fprintln(os.Stderr, "bench gate: skipped (SKIP_BENCH_GATE set)")
		return true, nil
	}
	baseline, err := microbench.LoadBaseline(baselinePath)
	if err != nil {
		return false, err
	}
	fmt.Fprintln(os.Stderr, "bench gate: rerunning micro-benchmarks ...")
	current := microbench.All()
	regs := microbench.Gate(baseline, current, microbench.DefaultGateTolerance)
	// A single testing.Benchmark measurement can come in 30%+ slow on a shared
	// runner; retry each flagged benchmark and keep its fastest time, so only a
	// reproducible slowdown fails the gate.
	for attempt := 0; attempt < 2 && len(regs) > 0; attempt++ {
		retried := make([]microbench.Result, 0, len(regs))
		for _, reg := range regs {
			fmt.Fprintf(os.Stderr, "bench gate: retrying %s (%.1f ns/op vs baseline %.1f)\n",
				reg.Name, reg.CurrentNs, reg.BaselineNs)
			r, ok := microbench.Run(reg.Name)
			if !ok {
				continue
			}
			if reg.CurrentNs < r.NsPerOp {
				r.NsPerOp = reg.CurrentNs
			}
			retried = append(retried, r)
		}
		regs = microbench.Gate(baseline, retried, microbench.DefaultGateTolerance)
	}
	// Scaling floors: the parallel variants must actually beat their serial
	// baselines when the runner has the cores for it. Skips (narrow runner,
	// missing measurement) are logged, never failed — a one-core runner
	// cannot demonstrate an eight-way speedup.
	fails, skipped := microbench.GateScaling(current, microbench.DefaultScalingChecks())
	for _, s := range skipped {
		fmt.Fprintf(os.Stderr, "bench gate: scaling check skipped: %s\n", s)
	}
	for attempt := 0; attempt < 2 && len(fails) > 0; attempt++ {
		byName := make(map[string]microbench.Result, len(current))
		for _, r := range current {
			byName[r.Name] = r
		}
		for _, f := range fails {
			fmt.Fprintf(os.Stderr, "bench gate: retrying %s vs %s (%.2fx speedup vs %.2fx floor)\n",
				f.Check.Parallel, f.Check.Serial, f.Speedup, f.Check.MinSpeedup)
			// Rerun the pair back to back so both sides see the same
			// instantaneous runner load — a serial measurement taken during a
			// quieter moment of the full sweep understates the speedup. Keep
			// whichever pair shows the better ratio, so only a reproducible
			// shortfall fails the gate.
			s, okS := microbench.Run(f.Check.Serial)
			p, okP := microbench.Run(f.Check.Parallel)
			if !okS || !okP || p.NsPerOp <= 0 {
				continue
			}
			if s.NsPerOp/p.NsPerOp > f.Speedup {
				byName[s.Name] = s
				byName[p.Name] = p
			}
		}
		current = current[:0]
		for _, r := range byName {
			current = append(current, r)
		}
		fails, _ = microbench.GateScaling(current, microbench.DefaultScalingChecks())
	}
	if len(regs) == 0 && len(fails) == 0 {
		fmt.Fprintf(os.Stderr, "bench gate: ok (%d benchmarks within %.0f%% of %s)\n",
			len(current), microbench.DefaultGateTolerance*100, baselinePath)
		return true, nil
	}
	for _, r := range regs {
		fmt.Fprintf(os.Stderr, "bench gate: REGRESSION %s\n", r)
	}
	for _, f := range fails {
		fmt.Fprintf(os.Stderr, "bench gate: SCALING REGRESSION %s\n", f)
	}
	return false, nil
}

// runServe executes the sustained-load serving benchmark — the same workload
// with the plan cache on and off — and writes the paired results as JSON.
func runServe(path string, clients int, duration time.Duration) error {
	fmt.Fprintf(os.Stderr, "running serving benchmark: %d clients, %s per run (cache on, then off) ...\n",
		clients, duration)
	rep, err := servebench.Compare(servebench.Config{Clients: clients, Duration: duration})
	if err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "cache on:  %8.0f qps  p50 %.2fms  p99 %.2fms  hit rate %.3f\n",
		rep.CacheOn.QPS, rep.CacheOn.P50Ms, rep.CacheOn.P99Ms, rep.CacheOn.HitRate)
	fmt.Fprintf(os.Stderr, "cache off: %8.0f qps  p50 %.2fms  p99 %.2fms\n",
		rep.CacheOff.QPS, rep.CacheOff.P50Ms, rep.CacheOff.P99Ms)
	fmt.Fprintf(os.Stderr, "speedup:   %.2fx\n", rep.Speedup)
	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	if path == "-" {
		_, err := os.Stdout.Write(data)
		return err
	}
	if err := os.WriteFile(path, data, 0o644); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "wrote %s\n", path)
	return nil
}

// runServeGate reruns a short serving benchmark and compares it against the
// recorded baseline: the gate fails when cache-on throughput halves or the
// hit rate drops materially — either means the serving layer stopped serving
// from cache.
func runServeGate(baselinePath string, clients int) (bool, error) {
	if os.Getenv("SKIP_BENCH_GATE") != "" {
		fmt.Fprintln(os.Stderr, "serve gate: skipped (SKIP_BENCH_GATE set)")
		return true, nil
	}
	raw, err := os.ReadFile(baselinePath)
	if err != nil {
		return false, err
	}
	var baseline servebench.Report
	if err := json.Unmarshal(raw, &baseline); err != nil {
		return false, fmt.Errorf("serve gate: parse %s: %w", baselinePath, err)
	}
	fmt.Fprintln(os.Stderr, "serve gate: rerunning sustained-load benchmark ...")
	cur, err := servebench.Run(servebench.Config{Clients: clients, Duration: time.Second})
	if err != nil {
		return false, err
	}
	const qpsFloorFrac, hitSlack = 0.5, 0.05
	ok := true
	if floor := baseline.CacheOn.QPS * qpsFloorFrac; cur.QPS < floor {
		fmt.Fprintf(os.Stderr, "serve gate: REGRESSION qps %.0f < floor %.0f (baseline %.0f)\n",
			cur.QPS, floor, baseline.CacheOn.QPS)
		ok = false
	}
	if floor := baseline.CacheOn.HitRate - hitSlack; cur.HitRate < floor {
		fmt.Fprintf(os.Stderr, "serve gate: REGRESSION hit rate %.3f < floor %.3f (baseline %.3f)\n",
			cur.HitRate, floor, baseline.CacheOn.HitRate)
		ok = false
	}
	if cur.Errors > 0 {
		fmt.Fprintf(os.Stderr, "serve gate: REGRESSION %d/%d queries errored\n", cur.Errors, cur.Queries)
		ok = false
	}
	if ok {
		fmt.Fprintf(os.Stderr, "serve gate: ok (%.0f qps, hit rate %.3f vs baseline %.0f qps, %.3f)\n",
			cur.QPS, cur.HitRate, baseline.CacheOn.QPS, baseline.CacheOn.HitRate)
	}
	return ok, nil
}

// runMicro executes the micro-benchmark suite and writes the results as
// indented JSON, one object per benchmark.
func runMicro(path string) error {
	fmt.Fprintln(os.Stderr, "running micro-benchmarks (this takes ~30s) ...")
	results := microbench.All()
	data, err := json.MarshalIndent(results, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	if path == "-" {
		_, err := os.Stdout.Write(data)
		return err
	}
	if err := os.WriteFile(path, data, 0o644); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "wrote %s\n", path)
	return nil
}
