// Command dqp-experiments regenerates EXPERIMENTS.md: it runs the full
// reproduction of the paper's evaluation — Table 1, Figs. 2–5, the overhead
// analysis, and the monitoring-frequency study — on the calibrated
// simulated Grid and writes the paper-vs-measured report.
//
// Usage:
//
//	dqp-experiments [-o EXPERIMENTS.md] [-only Table1,Fig2a]
//
// The full suite takes several minutes of real time: the simulated testbed
// actually executes every query, including the heavily perturbed static
// runs the paper measured.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"repro/internal/exp"
)

func main() {
	out := flag.String("o", "EXPERIMENTS.md", "output file ('-' for stdout)")
	only := flag.String("only", "", "comma-separated experiment subset (Table1,Fig2a,Fig2b,Fig3a,Fig3b,Fig4,Fig5,Overheads,MonitoringFrequency)")
	flag.Parse()

	type builder struct {
		name string
		fn   func() (*exp.Experiment, error)
	}
	all := []builder{
		{"Table1", exp.Table1},
		{"Fig2a", exp.Fig2a},
		{"Fig2b", exp.Fig2b},
		{"Fig3a", exp.Fig3a},
		{"Fig3b", exp.Fig3b},
		{"Fig4", exp.Fig4},
		{"Fig5", exp.Fig5},
		{"Overheads", exp.Overheads},
		{"MonitoringFrequency", exp.MonitoringFrequency},
	}
	selected := all
	if *only != "" {
		want := map[string]bool{}
		for _, name := range strings.Split(*only, ",") {
			want[strings.TrimSpace(strings.ToLower(name))] = true
		}
		selected = nil
		for _, b := range all {
			if want[strings.ToLower(b.name)] {
				selected = append(selected, b)
			}
		}
		if len(selected) == 0 {
			fmt.Fprintf(os.Stderr, "dqp-experiments: no experiment matches %q\n", *only)
			os.Exit(2)
		}
	}

	start := time.Now()
	var experiments []*exp.Experiment
	for _, b := range selected {
		fmt.Fprintf(os.Stderr, "running %-20s ... ", b.name)
		t0 := time.Now()
		e, err := b.fn()
		if err != nil {
			fmt.Fprintf(os.Stderr, "failed: %v\n", err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "done in %s\n", time.Since(t0).Round(time.Second))
		experiments = append(experiments, e)
	}
	report := exp.Report(experiments, time.Since(start))
	if *out == "-" {
		fmt.Print(report)
		return
	}
	if err := os.WriteFile(*out, []byte(report), 0o644); err != nil {
		fmt.Fprintf(os.Stderr, "dqp-experiments: %v\n", err)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "wrote %s\n", *out)
}
