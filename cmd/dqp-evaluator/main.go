// Command dqp-evaluator runs one Grid Query Evaluation Service as a real
// network daemon: it hosts the fragment instances the coordinator's
// scheduler places on this machine, serves them over TCP, and — when the
// deployment is adaptive — forwards its raw self-monitoring events to the
// coordinator.
//
// All processes of one deployment must be started with the same manifest
// flags (-coordinator, -data, -compute, -scale, dataset sizes), because
// each evaluator independently derives the identical physical plan from the
// query text. A typical three-machine setup:
//
//	dqp-evaluator -node data1 -listen :7001 -peers coord=host0:7000,ws0=host2:7002,ws1=host3:7003 \
//	    -coordinator coord -data data1 -compute ws0,ws1 -adaptive
//	dqp-evaluator -node ws0 ... -perturb none
//	dqp-evaluator -node ws1 ... -perturb x10
//	dqp-coordinator -node coord ... -query "select ..."
package main

import (
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"

	"repro/internal/cliutil"
	"repro/internal/services"
	"repro/internal/simnet"
	"repro/internal/transport"
	"repro/internal/vtime"
)

func main() {
	var (
		node    = flag.String("node", "", "this machine's node name (required)")
		listen  = flag.String("listen", ":7001", "TCP listen address")
		perturb = flag.String("perturb", "none", "artificial load (vtime.Parse syntax: x10, sleep:10, normal:20,40, x10@500)")
	)
	manifestFlags := cliutil.NewManifestFlags()
	flag.Parse()
	if *node == "" {
		fatalf("-node is required")
	}
	manifest, peers, err := manifestFlags.Build()
	if err != nil {
		fatalf("%v", err)
	}
	tr, err := transport.NewTCP(simnet.NodeID(*node), *listen)
	if err != nil {
		fatalf("%v", err)
	}
	defer tr.Close()
	for name, addr := range peers {
		tr.AddPeer(simnet.NodeID(name), addr)
	}
	ev, err := services.NewEvaluator(manifest, simnet.NodeID(*node), tr)
	if err != nil {
		fatalf("%v", err)
	}
	defer ev.Close()
	p, err := vtime.Parse(*perturb)
	if err != nil {
		fatalf("%v", err)
	}
	ev.SetPerturbation(p)
	fmt.Printf("dqp-evaluator %s listening on %s (perturbation: %s)\n", *node, tr.Addr(), p)

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	<-sig
	fmt.Println("shutting down")
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "dqp-evaluator: "+format+"\n", args...)
	os.Exit(1)
}
