// Package repro's benchmarks regenerate every table and figure of the
// paper's evaluation (one benchmark per table/figure), plus ablations for
// the design choices DESIGN.md calls out. Each benchmark runs the full
// experiment and logs its paper-vs-measured rows; run with
//
//	go test -bench . -benchtime 1x -v .
//
// to regenerate all results once (each experiment takes seconds to tens of
// seconds of real time — the simulated testbed runs the queries for real).
package repro_test

import (
	"fmt"
	"testing"

	"repro/internal/core"
	"repro/internal/exp"
	"repro/internal/vtime"
)

// runExperiment executes one paper experiment per benchmark iteration and
// reports the mean absolute deviation from the paper's values as a metric.
func runExperiment(b *testing.B, fn func() (*exp.Experiment, error)) {
	b.Helper()
	for i := 0; i < b.N; i++ {
		e, err := fn()
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.Logf("\n%s", e.Render())
			n, dev := 0, 0.0
			for _, r := range e.Rows {
				if r.Paper == r.Paper && !r.Approx { // skip NaN and figure-read values
					diff := r.Measured - r.Paper
					if diff < 0 {
						diff = -diff
					}
					dev += diff
					n++
				}
			}
			if n > 0 {
				b.ReportMetric(dev/float64(n), "mean-abs-dev-vs-paper")
			}
		}
	}
}

// BenchmarkTable1 regenerates Table 1: Q1 (R2 and R1) and Q2 (R1) under
// {no ad, ad} x {no imb, imb}.
func BenchmarkTable1(b *testing.B) { runExperiment(b, exp.Table1) }

// BenchmarkFig2a regenerates Fig. 2(a): Q1, prospective adaptations,
// perturbation 10/20/30x.
func BenchmarkFig2a(b *testing.B) { runExperiment(b, exp.Fig2a) }

// BenchmarkFig2b regenerates Fig. 2(b): Q1 under policies A1-R2, A1-R1 and
// A2-R2.
func BenchmarkFig2b(b *testing.B) { runExperiment(b, exp.Fig2b) }

// BenchmarkFig3a regenerates Fig. 3(a): Q2, retrospective adaptations,
// sleep 10/50/100 ms.
func BenchmarkFig3a(b *testing.B) { runExperiment(b, exp.Fig3a) }

// BenchmarkFig3b regenerates Fig. 3(b): Q1 with 6000 tuples, prospective
// adaptations.
func BenchmarkFig3b(b *testing.B) { runExperiment(b, exp.Fig3b) }

// BenchmarkFig4 regenerates Fig. 4: Q1 over three WS machines with 0-3 of
// them perturbed.
func BenchmarkFig4(b *testing.B) { runExperiment(b, exp.Fig4) }

// BenchmarkFig5 regenerates Fig. 5: Q1 under per-tuple normally distributed
// perturbations.
func BenchmarkFig5(b *testing.B) { runExperiment(b, exp.Fig5) }

// BenchmarkOverheads regenerates the overhead analysis of §3.2.
func BenchmarkOverheads(b *testing.B) { runExperiment(b, exp.Overheads) }

// BenchmarkMonitoringFrequency regenerates the monitoring-frequency study
// of §3.2 (the figure the paper omits for space).
func BenchmarkMonitoringFrequency(b *testing.B) { runExperiment(b, exp.MonitoringFrequency) }

// BenchmarkAblationThresholds varies the Diagnoser trigger threshold
// thresA: too low and the system adapts on noise, too high and it never
// adapts. The paper fixes 20% and leaves tuning as future work.
func BenchmarkAblationThresholds(b *testing.B) {
	for _, thresA := range []float64{0.05, 0.20, 0.45} {
		b.Run(fmt.Sprintf("thresA=%.2f", thresA), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				res, err := exp.Run(exp.Config{
					Query: exp.Q1, Adaptive: true, ThresA: thresA,
					Sequences: 1000,
					Perturb:   map[int]vtime.Perturbation{1: vtime.Multiplier(10)},
				})
				if err != nil {
					b.Fatal(err)
				}
				if i == 0 {
					b.ReportMetric(res.ResponseMs, "paper-ms")
					b.ReportMetric(float64(res.Stats.Adaptations), "adaptations")
				}
			}
		})
	}
}

// BenchmarkAblationWindow varies the MED window length: shorter windows
// react faster but are noisier.
func BenchmarkAblationWindow(b *testing.B) {
	for _, window := range []int{5, 25, 100} {
		b.Run(fmt.Sprintf("window=%d", window), func(b *testing.B) {
			med := core.MEDConfig{Window: window, ThresM: 0.20, MinEvents: 3}
			for i := 0; i < b.N; i++ {
				res, err := exp.Run(exp.Config{
					Query: exp.Q1, Adaptive: true, MED: &med,
					Sequences: 1000,
					Perturb:   map[int]vtime.Perturbation{1: vtime.Multiplier(10)},
				})
				if err != nil {
					b.Fatal(err)
				}
				if i == 0 {
					b.ReportMetric(res.ResponseMs, "paper-ms")
				}
			}
		})
	}
}

// BenchmarkAblationCheckpoint varies the checkpoint interval: shorter
// intervals release recovery-log entries sooner (less retrospective reach,
// more acknowledgement traffic).
func BenchmarkAblationCheckpoint(b *testing.B) {
	for _, every := range []int{10, 50, 200} {
		b.Run(fmt.Sprintf("every=%d", every), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				res, err := exp.Run(exp.Config{
					Query: exp.Q1, Adaptive: true, Response: core.R1,
					CheckpointEvery: every, Sequences: 1000,
					Perturb: map[int]vtime.Perturbation{1: vtime.Multiplier(10)},
				})
				if err != nil {
					b.Fatal(err)
				}
				if i == 0 {
					b.ReportMetric(res.ResponseMs, "paper-ms")
					b.ReportMetric(float64(res.Stats.TuplesMoved), "tuples-moved")
				}
			}
		})
	}
}

// BenchmarkAblationBuckets varies the hash-policy bucket count for the
// stateful Q2 rebalance: more buckets move state at a finer grain.
func BenchmarkAblationBuckets(b *testing.B) {
	for _, buckets := range []int{64, 512, 4096} {
		b.Run(fmt.Sprintf("buckets=%d", buckets), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				res, err := exp.Run(exp.Config{
					Query: exp.Q2, Adaptive: true, Response: core.R1,
					Buckets: buckets, Sequences: 1000, Interactions: 1500,
					Perturb: map[int]vtime.Perturbation{1: vtime.Sleep(10)},
				})
				if err != nil {
					b.Fatal(err)
				}
				if i == 0 {
					b.ReportMetric(res.ResponseMs, "paper-ms")
					b.ReportMetric(float64(res.Stats.StateReplays), "state-replays")
				}
			}
		})
	}
}

// BenchmarkStepPerturbation measures the motivating scenario the paper's
// title promises but its figures hold constant: a machine that is healthy
// when the query starts and degrades mid-flight. The perturbation switches
// from none to 20x after 300 WS calls; the adaptive rows show detection and
// repair, the static row the damage.
func BenchmarkStepPerturbation(b *testing.B) {
	configs := []struct {
		name     string
		adaptive bool
		response core.Response
	}{
		{"static", false, 0},
		{"adaptive-R2", true, core.R2},
		{"adaptive-R1", true, core.R1},
	}
	for _, cfg := range configs {
		b.Run(cfg.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				res, err := exp.Run(exp.Config{
					Query: exp.Q1, Adaptive: cfg.adaptive, Response: cfg.response,
					Perturb: map[int]vtime.Perturbation{
						1: vtime.Step{At: 300, Before: vtime.None, After: vtime.Multiplier(20)},
					},
				})
				if err != nil {
					b.Fatal(err)
				}
				if i == 0 {
					b.ReportMetric(res.ResponseMs, "paper-ms")
					b.ReportMetric(float64(res.Stats.Adaptations), "adaptations")
				}
			}
		})
	}
}
