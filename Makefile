GO ?= go

.PHONY: check vet doclint build test race chaos lowmem bigtable bench benchgate micro serve servegate experiments fuzz

## check: the full tier-1 gate — vet, the doc-comment lint, build, the test
## suite under -race, the chaos (kill/join) suite, the low-memory suite, the
## big-table streaming-scan scenario, the benchmark regression gate, and the
## sustained-load serving gate (SKIP_BENCH_GATE=1 skips both bench gates on
## noisy runners).
check: vet doclint build race chaos lowmem bigtable benchgate servegate

vet:
	$(GO) vet ./...

## doclint: fail on exported identifiers without doc comments.
doclint:
	$(GO) run ./cmd/doclint ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

## chaos: the elastic-cluster regression suite — evaluators killed and added
## mid-query under the race detector, twice, asserting exact results.
chaos:
	$(GO) test ./internal/chaos/ -race -count=2

## lowmem: the services and chaos suites with a 64KiB per-query memory
## budget forced on every coordinator (GRIDDQP_FORCE_MEM_BUDGET), so every
## stateful query in the suites exercises the grace-hash spill path — first
## with the classic serial drivers, then again with width-4 morsel worker
## pools (GRIDDQP_FORCE_PARALLEL), so every budgeted query also exercises the
## striped-budget parallel spill path.
lowmem:
	GRIDDQP_FORCE_MEM_BUDGET=65536 $(GO) test ./internal/services/ ./internal/chaos/ -count=1
	GRIDDQP_FORCE_MEM_BUDGET=65536 GRIDDQP_FORCE_PARALLEL=4 $(GO) test ./internal/services/ ./internal/chaos/ -count=1

## bigtable: the streaming-scan acceptance scenario — posix-stored tables
## at least 16x the query memory budget, drained through the join+aggregate
## demo query, asserting byte-identical rows, zero leaked spill runs, and
## zero inflight budget bytes. GRIDDQP_BIGTABLE_ROWS scales the stored
## tables (default 3000 rows; set six or seven figures for a multi-GB run).
bigtable:
	$(GO) test ./internal/services/ -run 'TestBigTableStoredScan' -count=1

## bench: the engine micro-benchmarks (codec, producer, volcano vs batch).
bench:
	$(GO) test ./internal/microbench/ -bench . -benchmem -run xxx

## benchgate: fail if any micro-benchmark ns_per_op regresses >25% against
## the committed BENCH_micro.json baseline.
benchgate:
	$(GO) run ./cmd/dqp-experiments -benchgate BENCH_micro.json

## micro: write the micro-benchmark results to BENCH_micro.json.
micro:
	$(GO) run ./cmd/dqp-experiments -micro BENCH_micro.json

## serve: write the sustained-load serving benchmark (plan cache on vs off)
## to BENCH_serving.json.
serve:
	$(GO) run ./cmd/dqp-experiments -serve BENCH_serving.json -clients 16 -duration 3s

## servegate: a short sustained-load smoke run; fail if QPS or cache hit rate
## regresses against the committed BENCH_serving.json baseline.
servegate:
	$(GO) run ./cmd/dqp-experiments -servegate BENCH_serving.json

## experiments: regenerate EXPERIMENTS.md (several minutes).
experiments:
	$(GO) run ./cmd/dqp-experiments

## fuzz: a short fuzzing pass over the normalizer and the tuple codec.
fuzz:
	$(GO) test ./internal/sqlparse/ -fuzz FuzzNormalizeSQL -fuzztime 30s
	$(GO) test ./internal/relation/ -fuzz FuzzTupleCodecRoundTrip -fuzztime 30s
