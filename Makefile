GO ?= go

.PHONY: check vet build test race bench micro experiments fuzz

## check: the full tier-1 gate — vet, build, and the test suite under -race.
check: vet build race

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

## bench: the engine micro-benchmarks (codec, producer, volcano vs batch).
bench:
	$(GO) test ./internal/microbench/ -bench . -benchmem -run xxx

## micro: write the micro-benchmark results to BENCH_micro.json.
micro:
	$(GO) run ./cmd/dqp-experiments -micro BENCH_micro.json

## experiments: regenerate EXPERIMENTS.md (several minutes).
experiments:
	$(GO) run ./cmd/dqp-experiments

## fuzz: a short fuzzing pass over the tuple codec.
fuzz:
	$(GO) test ./internal/relation/ -fuzz FuzzTupleCodecRoundTrip -fuzztime 30s
