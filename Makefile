GO ?= go

.PHONY: check vet build test race bench benchgate micro experiments fuzz

## check: the full tier-1 gate — vet, build, the test suite under -race, and
## the benchmark regression gate (SKIP_BENCH_GATE=1 skips it on noisy runners).
check: vet build race benchgate

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

## bench: the engine micro-benchmarks (codec, producer, volcano vs batch).
bench:
	$(GO) test ./internal/microbench/ -bench . -benchmem -run xxx

## benchgate: fail if any micro-benchmark ns_per_op regresses >25% against
## the committed BENCH_micro.json baseline.
benchgate:
	$(GO) run ./cmd/dqp-experiments -benchgate BENCH_micro.json

## micro: write the micro-benchmark results to BENCH_micro.json.
micro:
	$(GO) run ./cmd/dqp-experiments -micro BENCH_micro.json

## experiments: regenerate EXPERIMENTS.md (several minutes).
experiments:
	$(GO) run ./cmd/dqp-experiments

## fuzz: a short fuzzing pass over the tuple codec.
fuzz:
	$(GO) test ./internal/relation/ -fuzz FuzzTupleCodecRoundTrip -fuzztime 30s
