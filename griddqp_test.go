package repro_test

import (
	"context"
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"

	repro "repro"
)

// demoGrid assembles the standard topology at a fast time scale.
func demoGrid(t *testing.T, opts ...repro.CoordinatorOption) (*repro.Grid, *repro.Coordinator) {
	t.Helper()
	g := repro.NewGrid(repro.WithScale(2 * time.Microsecond))
	if err := g.AddDemoDatabaseSized("data1", 300, 500); err != nil {
		t.Fatal(err)
	}
	for _, n := range []string{"ws0", "ws1"} {
		if err := g.AddComputeNode(n, 1.0); err != nil {
			t.Fatal(err)
		}
	}
	coord, err := g.NewCoordinator("coord", opts...)
	if err != nil {
		t.Fatal(err)
	}
	return g, coord
}

func TestFacadeStaticQuery(t *testing.T) {
	_, coord := demoGrid(t)
	res, err := coord.Query("select EntropyAnalyser(p.sequence) from protein_sequences p")
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 300 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	if res.ResponseMs <= 0 {
		t.Error("no response time")
	}
	if len(res.Columns) != 1 {
		t.Errorf("columns = %v", res.Columns)
	}
}

func TestFacadeAdaptiveWithPerturbation(t *testing.T) {
	g, coord := demoGrid(t, repro.Adaptive(), repro.Retrospective(),
		repro.QueryTimeout(2*time.Minute))
	if err := g.Perturb("ws1", repro.Slowdown(15)); err != nil {
		t.Fatal(err)
	}
	res, err := coord.Query("select EntropyAnalyser(p.sequence) from protein_sequences p")
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 300 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	if res.Stats.Adaptations == 0 {
		t.Errorf("expected at least one adaptation: %+v", res.Stats)
	}
}

func TestFacadeJoin(t *testing.T) {
	_, coord := demoGrid(t, repro.Adaptive())
	res, err := coord.Query("select i.ORF2 from protein_sequences p, protein_interactions i where i.ORF1 = p.ORF")
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 500 {
		t.Fatalf("rows = %d, want 500 (every interaction matches)", len(res.Rows))
	}
}

func TestFacadeExplain(t *testing.T) {
	_, coord := demoGrid(t)
	out, err := coord.Explain("select EntropyAnalyser(p.sequence) from protein_sequences p")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "OperationCall") || !strings.Contains(out, "fragment") {
		t.Errorf("explain output:\n%s", out)
	}
}

func TestFacadeErrors(t *testing.T) {
	g, coord := demoGrid(t)
	if err := g.Perturb("nope", repro.Slowdown(2)); err == nil {
		t.Error("perturbing unknown node accepted")
	}
	if _, err := coord.Query("select broken from nowhere"); err == nil {
		t.Error("bad query accepted")
	}
}

func TestFacadePerturbationKinds(t *testing.T) {
	// All perturbation constructors produce working models.
	perts := []repro.Perturbation{
		repro.Slowdown(2),
		repro.SleepInjection(5),
		repro.NormalJitter(1, 3, 42),
		repro.StepAt(10, repro.Slowdown(1), repro.Slowdown(2)),
	}
	for _, p := range perts {
		if got := p.Apply(1, 0); got <= 0 {
			t.Errorf("%s: non-positive cost %v", p, got)
		}
	}
}

func TestFacadePreparedStatement(t *testing.T) {
	_, coord := demoGrid(t)
	stmt, err := coord.Prepare("select p.ORF from protein_sequences p where p.ORF = ?")
	if err != nil {
		t.Fatal(err)
	}
	if stmt.NumParams() != 1 {
		t.Fatalf("NumParams = %d, want 1", stmt.NumParams())
	}
	for _, orf := range []string{"YAL00004C", "YAL00042C"} {
		res, err := stmt.Execute(context.Background(), orf)
		if err != nil {
			t.Fatalf("Execute(%q): %v", orf, err)
		}
		if len(res.Rows) != 1 || res.Rows[0][0].AsString() != orf {
			t.Fatalf("Execute(%q) rows = %v", orf, res.Rows)
		}
	}
	stats := coord.PlanCacheStats()
	if stats.Hits == 0 {
		t.Errorf("prepared executions never hit the plan cache: %+v", stats)
	}
	if _, err := stmt.Execute(context.Background()); err == nil {
		t.Error("missing argument accepted")
	}
}

func TestFacadeConcurrentClients(t *testing.T) {
	_, coord := demoGrid(t, repro.MaxConcurrentQueries(4, 64))
	var wg sync.WaitGroup
	errs := make(chan error, 16)
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			q := fmt.Sprintf("select p.ORF from protein_sequences p where p.ORF = 'YAL%05dC'", i)
			res, err := coord.Query(q)
			if err != nil {
				errs <- err
				return
			}
			if len(res.Rows) != 1 {
				errs <- fmt.Errorf("client %d: %d rows", i, len(res.Rows))
			}
		}(i)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}

func TestFacadeValues(t *testing.T) {
	tp := repro.Tuple{repro.Int(1), repro.Float(2.5), repro.String("x")}
	if tp.Format() != "(1, 2.5, x)" {
		t.Errorf("tuple format %q", tp.Format())
	}
}

func TestFacadeElasticSurvivesKill(t *testing.T) {
	g := repro.NewGrid(repro.WithScale(10 * time.Microsecond))
	if err := g.AddDemoDatabaseSized("data1", 300, 0); err != nil {
		t.Fatal(err)
	}
	for _, n := range []string{"ws0", "ws1", "ws2"} {
		if err := g.AddComputeNode(n, 1.0); err != nil {
			t.Fatal(err)
		}
	}
	coord, err := g.NewCoordinator("coord", repro.Elastic())
	if err != nil {
		t.Fatal(err)
	}
	killer := time.AfterFunc(2*time.Millisecond, func() { _ = g.KillNode("ws1") })
	defer killer.Stop()
	res, err := coord.Query("select EntropyAnalyser(p.sequence) from protein_sequences p")
	if err != nil {
		t.Fatalf("elastic query with mid-flight kill: %v", err)
	}
	if len(res.Rows) != 300 {
		t.Fatalf("rows = %d, want 300", len(res.Rows))
	}
	if g.Alive("ws1") {
		t.Skip("query finished before the kill landed")
	}
	if res.Stats.Failovers < 1 {
		t.Errorf("failovers = %d, want >= 1", res.Stats.Failovers)
	}
}
